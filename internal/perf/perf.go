// Package perf is the benchmark-trajectory harness: a fixed grid of
// pipeline-stage benchmarks (generation, both trace codecs, annotation, the
// fused streaming cell, both timing models on their record and batch fetch
// paths, the predictor-zoo sweep) executed programmatically via
// testing.Benchmark and reported as a stable JSON document. The checked-in
// BENCH_*.json snapshots give every PR a measurable perf baseline — see
// PERFORMANCE.md for how to read and refresh them.
//
// The grid is deterministic in structure: entry names, ordering and the
// ratio keys never depend on timing, so successive runs diff cleanly and a
// regression shows up as a changed number, not a changed shape.
package perf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"lvp/internal/axp21164"
	"lvp/internal/bench"
	"lvp/internal/lvp"
	"lvp/internal/ppc620"
	"lvp/internal/prog"
	"lvp/internal/trace"
	"lvp/internal/vm"
)

// Schema identifies the report layout for downstream tooling.
const Schema = "lvpbench/v1"

// Entry is one grid cell's measurement. ns/record and records/sec are the
// primary axes; MB/s is reported for the byte-denominated codec stages and
// allocs/record for every stage (the streaming hot paths must hold 0).
type Entry struct {
	Name            string  `json:"name"`
	Records         int64   `json:"records"`
	NsPerRecord     float64 `json:"ns_per_record"`
	RecordsPerSec   float64 `json:"records_per_sec"`
	MBPerSec        float64 `json:"mb_per_sec,omitempty"`
	AllocsPerRecord float64 `json:"allocs_per_record"`
}

// Report is the full bench-grid result.
type Report struct {
	Schema    string  `json:"schema"`
	Bench     string  `json:"bench"`
	Target    string  `json:"target"`
	Scale     int     `json:"scale"`
	Smoke     bool    `json:"smoke,omitempty"`
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	Entries   []Entry `json:"entries"`
	// Ratios are records/sec speedups between named grid cells; the keys
	// are fixed. *_batch_speedup compares a batched stage against its PR-4
	// record-at-a-time form on identical work. vlt2_size_ratio is the odd
	// one out: VLT2-flate encoded bytes over VLT1 bytes (smaller is
	// better), computed from Sizes rather than cell timings.
	Ratios map[string]float64 `json:"ratios"`
	// Sizes records the at-rest encoded size of the workload trace in each
	// format, in bytes.
	Sizes     map[string]int64 `json:"sizes,omitempty"`
	PeakRSSKB int64            `json:"peak_rss_kb"`
}

// Options configure a grid run.
type Options struct {
	Bench     string // workload name (default: first of bench.All())
	Scale     int    // workload scale (default 1)
	Benchtime string // test.benchtime value, e.g. "1s" or "20x" (default "1s")
	Smoke     bool   // smoke sizing: small trace, few iterations (CI)
	Log       io.Writer
}

// workload is the prepared input shared by every grid cell: one benchmark
// program, its materialized trace, annotation, and its VLT1, VLT2-raw and
// VLT2-flate encodings.
type workload struct {
	prog    *prog.Program
	tr      *trace.Trace
	ann     trace.Annotation
	enc     []byte // VLT1
	enc2    []byte // VLT2, raw blocks
	enc2f   []byte // VLT2, flate blocks
	enc2x   []byte // VLT2, fixed-width blocks
	records int64
}

// gridCell is one fixed grid entry: bytes != 0 marks byte-denominated
// stages (MB/s reported against the VLT1 encoding size).
type gridCell struct {
	name  string
	bytes func(w *workload) int64
	run   func(b *testing.B, w *workload)
}

func encBytes(w *workload) int64 { return int64(len(w.enc)) }

func enc2Bytes(w *workload) int64 { return int64(len(w.enc2)) }

func enc2fBytes(w *workload) int64 { return int64(len(w.enc2f)) }

func enc2xBytes(w *workload) int64 { return int64(len(w.enc2x)) }

// grid is the fixed benchmark grid, in report order. The codec2.* cells
// cover the VLT2 block codec: encode, the sequential stream decoder, the
// zero-copy indexed decoder, decode fanned out on the worker pool (drained
// through the zero-copy NextBlock API), decode of flate-compressed blocks,
// and the fixed-width codec both indexed and parallel. The pipeline.file.*
// pair runs the full fused pipeline (decode → annotate → 620 timing model)
// from an encoded trace in each format.
var grid = []gridCell{
	{"gen.record", nil, benchGenRecord},
	{"gen.batch", nil, benchGenBatch},
	{"codec.decode.record", encBytes, benchDecodeRecord},
	{"codec.decode.batch", encBytes, benchDecodeBatch},
	{"codec.encode", encBytes, benchEncode},
	{"codec2.encode", enc2Bytes, benchEncode2},
	{"codec2.decode.batch", enc2Bytes, benchDecode2Batch},
	{"codec2.decode.indexed", enc2Bytes, benchDecode2Indexed},
	{"codec2.decode.parallel", enc2Bytes, benchDecode2Parallel},
	{"codec2.decode.flate", enc2fBytes, benchDecode2Flate},
	{"codec2.decode.fixed", enc2xBytes, benchDecode2Fixed},
	{"codec2.decode.fixed.parallel", enc2xBytes, benchDecode2FixedParallel},
	{"annotate.record", nil, benchAnnotateRecord},
	{"annotate.batch", nil, benchAnnotateBatch},
	{"pipeline.fused.record", nil, benchFusedRecord},
	{"pipeline.fused.batch", nil, benchFusedBatch},
	{"pipeline.file.vlt1", encBytes, benchFileVLT1},
	{"pipeline.file.vlt2", enc2Bytes, benchFileVLT2},
	{"sim.620.record", nil, benchSim620Record},
	{"sim.620.batch", nil, benchSim620Batch},
	{"sim.21164.record", nil, benchSim21164Record},
	{"sim.21164.batch", nil, benchSim21164Batch},
	{"zoo.sweep", nil, benchZooSweep},
	{"zoo.sweep.shared", nil, benchZooSweepShared},
}

// ratios maps each fixed ratio key to its numerator/denominator entries,
// compared on records/sec.
var ratios = []struct{ key, num, den string }{
	{"gen_batch_speedup", "gen.batch", "gen.record"},
	{"decode_batch_speedup", "codec.decode.batch", "codec.decode.record"},
	{"annotate_batch_speedup", "annotate.batch", "annotate.record"},
	{"pipeline_batch_speedup", "pipeline.fused.batch", "pipeline.fused.record"},
	{"vlt2_decode_speedup", "codec2.decode.indexed", "codec.decode.batch"},
	{"vlt2_parallel_speedup", "codec2.decode.parallel", "codec.decode.batch"},
	{"vlt2_fixed_speedup", "codec2.decode.fixed", "codec.decode.batch"},
	{"vlt2_fixed_parallel_speedup", "codec2.decode.fixed.parallel", "codec.decode.batch"},
	{"file_pipeline_speedup", "pipeline.file.vlt2", "pipeline.file.vlt1"},
	{"sim_620_batch_speedup", "sim.620.batch", "sim.620.record"},
	{"sim_21164_batch_speedup", "sim.21164.batch", "sim.21164.record"},
	{"zoo_shared_speedup", "zoo.sweep.shared", "zoo.sweep"},
}

// Run executes the full grid and returns the report.
func Run(opts Options) (*Report, error) {
	if opts.Bench == "" {
		opts.Bench = bench.All()[0].Name
	}
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	if opts.Benchtime == "" {
		opts.Benchtime = "1s"
		if opts.Smoke {
			opts.Benchtime = "2x"
		}
	}
	if opts.Log == nil {
		opts.Log = io.Discard
	}
	if err := setBenchtime(opts.Benchtime); err != nil {
		return nil, err
	}
	w, err := prepare(opts.Bench, opts.Scale)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Schema: Schema, Bench: opts.Bench, Target: prog.PPC.Name,
		Scale: opts.Scale, Smoke: opts.Smoke,
		GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		Ratios: make(map[string]float64, len(ratios)),
	}
	perSec := make(map[string]float64, len(grid))
	for _, cell := range grid {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			cell.run(b, w)
		})
		if res.N == 0 {
			return nil, fmt.Errorf("perf: %s did not run", cell.name)
		}
		e := Entry{Name: cell.name, Records: w.records}
		perOp := float64(res.T.Nanoseconds()) / float64(res.N) // one op = one full pass
		e.NsPerRecord = round3(perOp / float64(w.records))
		if perOp > 0 {
			e.RecordsPerSec = round3(float64(w.records) * 1e9 / perOp)
		}
		if cell.bytes != nil {
			if n := cell.bytes(w); n > 0 && perOp > 0 {
				e.MBPerSec = round3(float64(n) * 1e9 / perOp / (1 << 20))
			}
		}
		e.AllocsPerRecord = round3(float64(res.AllocsPerOp()) / float64(w.records))
		perSec[cell.name] = e.RecordsPerSec
		rep.Entries = append(rep.Entries, e)
		fmt.Fprintf(opts.Log, "%-24s %12.1f ns/rec %14.0f rec/s %8.3f allocs/rec\n",
			cell.name, e.NsPerRecord, e.RecordsPerSec, e.AllocsPerRecord)
	}
	for _, r := range ratios {
		if den := perSec[r.den]; den > 0 {
			rep.Ratios[r.key] = round3(perSec[r.num] / den)
		}
	}
	rep.Sizes = map[string]int64{
		"vlt1":       int64(len(w.enc)),
		"vlt2_raw":   int64(len(w.enc2)),
		"vlt2_flate": int64(len(w.enc2f)),
		"vlt2_fixed": int64(len(w.enc2x)),
	}
	if len(w.enc) > 0 {
		rep.Ratios["vlt2_size_ratio"] = round3(float64(len(w.enc2f)) / float64(len(w.enc)))
	}
	rep.PeakRSSKB = peakRSSKB()
	return rep, nil
}

// WriteJSON emits the report as stable, indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// prepare builds the workload once; every grid cell reuses it.
func prepare(name string, scale int) (*workload, error) {
	bm, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	p, err := bm.Build(prog.PPC, scale)
	if err != nil {
		return nil, fmt.Errorf("perf: building %s: %w", name, err)
	}
	tr, _, err := vm.Run(p, 0)
	if err != nil {
		return nil, fmt.Errorf("perf: tracing %s: %w", name, err)
	}
	ann, _, err := lvp.Annotate(tr, lvp.Simple)
	if err != nil {
		return nil, fmt.Errorf("perf: annotating %s: %w", name, err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		return nil, fmt.Errorf("perf: encoding %s: %w", name, err)
	}
	var buf2 bytes.Buffer
	if err := trace.Write2(&buf2, tr, trace.Writer2Options{}); err != nil {
		return nil, fmt.Errorf("perf: vlt2 encoding %s: %w", name, err)
	}
	var buf2f bytes.Buffer
	if err := trace.Write2(&buf2f, tr, trace.Writer2Options{Codec: trace.CodecFlate}); err != nil {
		return nil, fmt.Errorf("perf: vlt2/flate encoding %s: %w", name, err)
	}
	var buf2x bytes.Buffer
	if err := trace.Write2(&buf2x, tr, trace.Writer2Options{Codec: trace.CodecFixed}); err != nil {
		return nil, fmt.Errorf("perf: vlt2/fixed encoding %s: %w", name, err)
	}
	return &workload{
		prog: p, tr: tr, ann: ann,
		enc: buf.Bytes(), enc2: buf2.Bytes(), enc2f: buf2f.Bytes(), enc2x: buf2x.Bytes(),
		records: int64(len(tr.Records)),
	}, nil
}

// setBenchtime routes the chosen duration into the testing package.
// testing.Init registers the test.* flags; setting test.benchtime is the
// documented way to size testing.Benchmark from a non-test binary.
func setBenchtime(v string) error {
	testingInit()
	return flagSet("test.benchtime", v)
}

// round3 trims a float for stable, readable JSON.
func round3(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Round(v*1000) / 1000
}

// peakRSSKB reads the process peak resident set (VmHWM) from
// /proc/self/status; 0 when unavailable (non-Linux).
func peakRSSKB() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb
	}
	return 0
}

// --- grid cells ---

func benchGenRecord(b *testing.B, w *workload) {
	for i := 0; i < b.N; i++ {
		src := vm.NewSource(w.prog, 0)
		for {
			if _, err := src.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchGenBatch(b *testing.B, w *workload) {
	buf := make([]trace.Record, 256)
	for i := 0; i < b.N; i++ {
		src := vm.NewSource(w.prog, 0)
		for {
			if _, err := src.NextBatch(buf); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchDecodeRecord(b *testing.B, w *workload) {
	for i := 0; i < b.N; i++ {
		r, err := trace.NewReader(bytes.NewReader(w.enc))
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := r.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchDecodeBatch(b *testing.B, w *workload) {
	buf := make([]trace.Record, 256)
	for i := 0; i < b.N; i++ {
		r, err := trace.NewReader(bytes.NewReader(w.enc))
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := r.NextBatch(buf); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchEncode(b *testing.B, w *workload) {
	for i := 0; i < b.N; i++ {
		wr, err := trace.NewWriterCount(io.Discard, w.tr.Name, w.tr.Target, uint64(len(w.tr.Records)))
		if err != nil {
			b.Fatal(err)
		}
		for j := range w.tr.Records {
			if err := wr.WriteRecord(&w.tr.Records[j]); err != nil {
				b.Fatal(err)
			}
		}
		if err := wr.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchEncode2(b *testing.B, w *workload) {
	for i := 0; i < b.N; i++ {
		wr, err := trace.NewWriter2(io.Discard, w.tr.Name, w.tr.Target)
		if err != nil {
			b.Fatal(err)
		}
		for j := range w.tr.Records {
			if err := wr.WriteRecord(&w.tr.Records[j]); err != nil {
				b.Fatal(err)
			}
		}
		if err := wr.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// drainDecoder drives d through the shared batch buffer to EOF.
func drainDecoder(b *testing.B, d trace.Decoder, buf []trace.Record) {
	for {
		if _, err := d.NextBatch(buf); err == io.EOF {
			return
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

func benchDecode2Batch(b *testing.B, w *workload) {
	buf := make([]trace.Record, 256)
	for i := 0; i < b.N; i++ {
		r, err := trace.NewReader2(bytes.NewReader(w.enc2))
		if err != nil {
			b.Fatal(err)
		}
		drainDecoder(b, r, buf)
	}
}

func benchDecode2Indexed(b *testing.B, w *workload) {
	buf := make([]trace.Record, 256)
	for i := 0; i < b.N; i++ {
		r, err := trace.NewIndexedReaderBytes(w.enc2)
		if err != nil {
			b.Fatal(err)
		}
		drainDecoder(b, r, buf)
	}
}

// drainBlocks drives pr through the zero-copy block API to EOF.
func drainBlocks(b *testing.B, pr *trace.ParallelReader) {
	for {
		if _, err := pr.NextBlock(); err == io.EOF {
			return
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

func benchDecode2Parallel(b *testing.B, w *workload) {
	for i := 0; i < b.N; i++ {
		r, err := trace.NewIndexedReaderBytes(w.enc2)
		if err != nil {
			b.Fatal(err)
		}
		pr := r.Parallel(0)
		drainBlocks(b, pr)
		pr.Close()
	}
}

func benchDecode2Flate(b *testing.B, w *workload) {
	buf := make([]trace.Record, 256)
	for i := 0; i < b.N; i++ {
		r, err := trace.NewReader2(bytes.NewReader(w.enc2f))
		if err != nil {
			b.Fatal(err)
		}
		drainDecoder(b, r, buf)
	}
}

func benchDecode2Fixed(b *testing.B, w *workload) {
	buf := make([]trace.Record, 256)
	for i := 0; i < b.N; i++ {
		r, err := trace.NewIndexedReaderBytes(w.enc2x)
		if err != nil {
			b.Fatal(err)
		}
		drainDecoder(b, r, buf)
	}
}

func benchDecode2FixedParallel(b *testing.B, w *workload) {
	for i := 0; i < b.N; i++ {
		r, err := trace.NewIndexedReaderBytes(w.enc2x)
		if err != nil {
			b.Fatal(err)
		}
		pr := r.Parallel(0)
		drainBlocks(b, pr)
		pr.Close()
	}
}

func benchAnnotateRecord(b *testing.B, w *workload) {
	for i := 0; i < b.N; i++ {
		a, err := lvp.NewAnnotator(lvp.Simple, nil)
		if err != nil {
			b.Fatal(err)
		}
		for j := range w.tr.Records {
			a.Record(&w.tr.Records[j])
		}
	}
}

func benchAnnotateBatch(b *testing.B, w *workload) {
	states := make([]trace.PredState, len(w.tr.Records))
	for i := 0; i < b.N; i++ {
		a, err := lvp.NewAnnotator(lvp.Simple, nil)
		if err != nil {
			b.Fatal(err)
		}
		a.RecordBatch(w.tr.Records, states)
	}
}

// perRecordSource and perRecordAnnotated hide batch capability, forcing the
// fused cell onto the PR-4 record-at-a-time interface chain.
type perRecordSource struct{ trace.Source }

type perRecordAnnotated struct{ trace.AnnotatedSource }

func fused(b *testing.B, w *workload, perRecord bool) {
	var src trace.Source = vm.NewSource(w.prog, 0)
	if perRecord {
		src = perRecordSource{src}
	}
	pipe, err := lvp.NewPipe(src, lvp.Simple, nil)
	if err != nil {
		b.Fatal(err)
	}
	var ann trace.AnnotatedSource = pipe
	if perRecord {
		ann = perRecordAnnotated{ann}
	}
	if _, err := ppc620.SimulateSource(ann, ppc620.Config620(), lvp.Simple.Name); err != nil {
		b.Fatal(err)
	}
}

func benchFusedRecord(b *testing.B, w *workload) {
	for i := 0; i < b.N; i++ {
		fused(b, w, true)
	}
}

func benchFusedBatch(b *testing.B, w *workload) {
	for i := 0; i < b.N; i++ {
		fused(b, w, false)
	}
}

// benchFileVLT1 runs the full fused pipeline — decode, annotate, 620 timing
// model — sourced from an encoded VLT1 trace, the pre-VLT2 file path.
func benchFileVLT1(b *testing.B, w *workload) {
	for i := 0; i < b.N; i++ {
		r, err := trace.NewReader(bytes.NewReader(w.enc))
		if err != nil {
			b.Fatal(err)
		}
		pipe, err := lvp.NewPipe(r, lvp.Simple, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ppc620.SimulateSource(pipe, ppc620.Config620(), lvp.Simple.Name); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFileVLT2 is benchFileVLT1 on the VLT2 path: indexed zero-copy blocks
// decoded on the worker pool, feeding the same annotate+simulate chain.
func benchFileVLT2(b *testing.B, w *workload) {
	for i := 0; i < b.N; i++ {
		r, err := trace.NewIndexedReaderBytes(w.enc2)
		if err != nil {
			b.Fatal(err)
		}
		pr := r.Parallel(0)
		pipe, err := lvp.NewPipe(pr, lvp.Simple, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ppc620.SimulateSource(pipe, ppc620.Config620(), lvp.Simple.Name); err != nil {
			b.Fatal(err)
		}
		pr.Close()
	}
}

// The sim.* record/batch pairs isolate the machine-model loops on the
// prepared in-memory trace: .batch is the default slab-at-a-time fetch path
// (what Simulate runs), .record hides the source's batch capability so the
// same loop pays a per-record interface pull — the PR-9 regime.

func benchSim620Record(b *testing.B, w *workload) {
	for i := 0; i < b.N; i++ {
		src := perRecordAnnotated{w.tr.StreamAnnotated(w.ann)}
		if _, err := ppc620.SimulateSource(src, ppc620.Config620(), lvp.Simple.Name); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSim620Batch(b *testing.B, w *workload) {
	for i := 0; i < b.N; i++ {
		ppc620.Simulate(w.tr, w.ann, ppc620.Config620(), lvp.Simple.Name)
	}
}

func benchSim21164Record(b *testing.B, w *workload) {
	for i := 0; i < b.N; i++ {
		src := perRecordAnnotated{w.tr.StreamAnnotated(w.ann)}
		if _, err := axp21164.SimulateSource(src, axp21164.Config21164(), lvp.Simple.Name); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSim21164Batch(b *testing.B, w *workload) {
	for i := 0; i < b.N; i++ {
		axp21164.Simulate(w.tr, w.ann, axp21164.Config21164(), lvp.Simple.Name)
	}
}

// The zoo.sweep pair measures the full predictor-zoo registry over the
// workload trace: .sweep re-walks (and re-filters) the record stream per
// family, .shared extracts the load slab once and fans every family out
// over it — the decode-once path exp.ZooSweep takes.

func benchZooSweep(b *testing.B, w *workload) {
	for i := 0; i < b.N; i++ {
		for _, f := range lvp.Families() {
			lvp.MeasureZoo(w.tr, f.New())
		}
	}
}

func benchZooSweepShared(b *testing.B, w *workload) {
	for i := 0; i < b.N; i++ {
		loads := lvp.ExtractLoads(w.tr)
		for _, f := range lvp.Families() {
			lvp.MeasureZooLoads(loads, f.New())
		}
	}
}
