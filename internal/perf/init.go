package perf

import (
	"flag"
	"sync"
	"testing"
)

// The testing package only registers its flags (test.benchtime in
// particular) when a test binary or an explicit testing.Init call asks for
// them. lvpbench is a plain binary driving testing.Benchmark, so Init runs
// once here before any flag is set.
var initOnce sync.Once

func testingInit() { initOnce.Do(testing.Init) }

func flagSet(name, value string) error { return flag.Set(name, value) }
