// Package version renders a -version string for the repo's binaries from
// the build metadata the Go toolchain embeds (module version, VCS revision,
// toolchain) — no ldflags stamping required.
package version

import (
	"fmt"
	"runtime/debug"
	"strings"
)

// String renders "name version (revision, go1.xx)" for the named binary.
func String(name string) string {
	version, revision, goVersion := "devel", "", ""
	if info, ok := debug.ReadBuildInfo(); ok {
		if info.Main.Version != "" && info.Main.Version != "(devel)" {
			version = info.Main.Version
		}
		goVersion = info.GoVersion
		var rev, modified string
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					modified = "+dirty"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			revision = rev + modified
		}
	}
	var extra []string
	if revision != "" {
		extra = append(extra, revision)
	}
	if goVersion != "" {
		extra = append(extra, goVersion)
	}
	if len(extra) == 0 {
		return fmt.Sprintf("%s %s", name, version)
	}
	return fmt.Sprintf("%s %s (%s)", name, version, strings.Join(extra, ", "))
}
