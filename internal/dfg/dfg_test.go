package dfg

import (
	"testing"

	"lvp/internal/isa"
	"lvp/internal/trace"
)

func TestSerialChainCriticalPath(t *testing.T) {
	// 100 dependent adds: critical path = 100 cycles.
	tr := &trace.Trace{}
	for i := 0; i < 100; i++ {
		tr.Records = append(tr.Records, trace.Record{
			PC: uint64(0x1000 + 4*i), Op: isa.ADD, Rd: 5, Ra: 5, Rb: 5,
		})
	}
	r := Analyze(tr, nil, Default620())
	if r.CriticalPath != 100 {
		t.Errorf("critical path = %d, want 100", r.CriticalPath)
	}
	if r.LimitIPC() != 1 {
		t.Errorf("limit IPC = %v, want 1", r.LimitIPC())
	}
}

func TestIndependentOpsFlat(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 100; i++ {
		tr.Records = append(tr.Records, trace.Record{
			PC: uint64(0x1000 + 4*i), Op: isa.ADD, Rd: isa.Reg(1 + i%20), Ra: 0, Rb: 0,
		})
	}
	r := Analyze(tr, nil, Default620())
	if r.CriticalPath != 1 {
		t.Errorf("independent ops critical path = %d, want 1", r.CriticalPath)
	}
}

func loadChain(n int) *trace.Trace {
	tr := &trace.Trace{}
	for i := 0; i < n; i++ {
		tr.Records = append(tr.Records,
			trace.Record{PC: 0x1000, Op: isa.LD, Rd: 5, Ra: 5,
				Addr: 0x100000, Value: 0x100000, Size: 8, Class: isa.LoadIntData},
			trace.Record{PC: 0x1004, Op: isa.ADD, Rd: 5, Ra: 5, Rb: 0},
		)
	}
	return tr
}

func TestCollapsedLoadsShortenPath(t *testing.T) {
	tr := loadChain(100)
	base := Analyze(tr, nil, Default620())
	ann := trace.NewAnnotation(tr)
	for i := range tr.Records {
		if tr.Records[i].IsLoad() {
			ann[i] = trace.PredCorrect
		}
	}
	collapsed := Analyze(tr, ann, Default620())
	// Chain per pair: load(2) + add(1) = 3 -> collapsed: add(1) only.
	if base.CriticalPath != 300 {
		t.Errorf("base critical path = %d, want 300", base.CriticalPath)
	}
	if collapsed.CriticalPath != 100 {
		t.Errorf("collapsed critical path = %d, want 100", collapsed.CriticalPath)
	}
	if collapsed.CollapsedLoads != 100 {
		t.Errorf("collapsed loads = %d, want 100", collapsed.CollapsedLoads)
	}
}

func TestIncorrectPredictionsNotCollapsed(t *testing.T) {
	tr := loadChain(50)
	ann := trace.NewAnnotation(tr)
	for i := range tr.Records {
		if tr.Records[i].IsLoad() {
			ann[i] = trace.PredIncorrect
		}
	}
	r := Analyze(tr, ann, Default620())
	base := Analyze(tr, nil, Default620())
	if r.CriticalPath != base.CriticalPath {
		t.Errorf("incorrect predictions must not shorten the path: %d vs %d",
			r.CriticalPath, base.CriticalPath)
	}
	if r.CollapsedLoads != 0 {
		t.Errorf("collapsed loads = %d, want 0", r.CollapsedLoads)
	}
}

func TestMemoryDependenceHonoured(t *testing.T) {
	// store (fed by a divide) -> load of the same address: the load's
	// completion must wait for the store even with no register deps.
	tr := &trace.Trace{Records: []trace.Record{
		{PC: 0x1000, Op: isa.DIV, Rd: 7, Ra: 1, Rb: 2},
		{PC: 0x1004, Op: isa.SD, Rb: 7, Ra: 1, Addr: 0x100000, Value: 1, Size: 8},
		{PC: 0x1008, Op: isa.LD, Rd: 5, Ra: 3, Addr: 0x100000, Value: 1, Size: 8, Class: isa.LoadIntData},
	}}
	lat := Default620()
	r := Analyze(tr, nil, lat)
	want := lat.Div + lat.Store + lat.Load
	if r.CriticalPath != want {
		t.Errorf("critical path = %d, want %d (div -> store -> load)", r.CriticalPath, want)
	}
	// Disjoint address: the load no longer chains behind the store.
	tr.Records[2].Addr = 0x200000
	r2 := Analyze(tr, nil, lat)
	if r2.CriticalPath != lat.Div+lat.Store {
		t.Errorf("disjoint critical path = %d, want %d", r2.CriticalPath, lat.Div+lat.Store)
	}
}

func TestZeroResult(t *testing.T) {
	var r Result
	if r.LimitIPC() != 0 {
		t.Error("empty result must report 0 IPC")
	}
}
