// Package dfg computes dataflow (true-dependence) limits of a trace: the
// fastest possible execution on a machine with infinite resources and
// perfect control prediction, bounded only by register dataflow and
// instruction latencies. Comparing the limit with loads at full latency
// against the limit with correctly-predicted loads collapsed to zero cycles
// isolates the paper's central claim — that load value prediction "collapses
// true dependencies" — from any particular machine configuration.
package dfg

import (
	"lvp/internal/isa"
	"lvp/internal/trace"
)

// Latencies gives per-class result latencies for the limit computation.
// The defaults mirror the 620 column of paper Table 5.
type Latencies struct {
	SimpleInt int
	Mul       int
	Div       int
	Load      int
	Store     int
	SimpleFP  int
	ComplexFP int
	Branch    int
}

// Default620 returns the 620-flavoured latency set.
func Default620() Latencies {
	return Latencies{
		SimpleInt: 1, Mul: 4, Div: 35,
		Load: 2, Store: 1,
		SimpleFP: 3, ComplexFP: 18,
		Branch: 1,
	}
}

func (l Latencies) of(op isa.Op) int {
	switch isa.ClassOf(op) {
	case isa.ClassComplexInt:
		if op == isa.MUL {
			return l.Mul
		}
		return l.Div
	case isa.ClassLoad:
		return l.Load
	case isa.ClassStore:
		return l.Store
	case isa.ClassSimpleFP:
		return l.SimpleFP
	case isa.ClassComplexFP:
		return l.ComplexFP
	case isa.ClassBranch:
		return l.Branch
	default:
		return l.SimpleInt
	}
}

// Result summarises one dataflow-limit computation.
type Result struct {
	// CriticalPath is the longest register-dataflow chain in cycles.
	CriticalPath int
	// Instructions is the trace length.
	Instructions int
	// CollapsedLoads counts loads whose latency the annotation removed.
	CollapsedLoads int
}

// LimitIPC is the dataflow-limit instructions-per-cycle.
func (r Result) LimitIPC() float64 {
	if r.CriticalPath == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.CriticalPath)
}

// Analyze computes the dataflow limit of a trace. If ann is non-nil, loads
// annotated PredCorrect or PredConstant contribute zero latency (their
// values were forwarded at dispatch); all other instructions use their
// class latency. Memory dependences are honoured conservatively: a load
// depends on the latest older store that overlaps its address.
func Analyze(t *trace.Trace, ann trace.Annotation, lat Latencies) Result {
	var readyG, readyF [isa.NumRegs]int
	// lastStoreDone maps 8-byte-aligned addresses to the completion time
	// of the last store covering them.
	lastStoreDone := make(map[uint64]int)
	res := Result{Instructions: len(t.Records)}
	critical := 0

	for i := range t.Records {
		r := &t.Records[i]
		in := r.Inst()
		start := 0
		var srcs [4]isa.RegRef
		for _, ref := range isa.Sources(in, srcs[:0]) {
			var rc int
			if ref.FP {
				rc = readyF[ref.Reg]
			} else if ref.Reg != isa.R0 {
				rc = readyG[ref.Reg]
			}
			if rc > start {
				start = rc
			}
		}
		latency := lat.of(r.Op)
		if r.IsLoad() {
			// Memory dependence on the most recent overlapping store.
			for a := r.Addr &^ 7; a < r.Addr+uint64(r.Size); a += 8 {
				if d := lastStoreDone[a]; d > start {
					start = d
				}
			}
			if ann != nil && (ann[i] == trace.PredCorrect || ann[i] == trace.PredConstant) {
				latency = 0 // collapsed true dependence
				res.CollapsedLoads++
			}
		}
		done := start + latency
		if r.IsStore() {
			for a := r.Addr &^ 7; a < r.Addr+uint64(r.Size); a += 8 {
				if done > lastStoreDone[a] {
					lastStoreDone[a] = done
				}
			}
		}
		if ref, ok := isa.Dest(in); ok {
			if ref.FP {
				readyF[ref.Reg] = done
			} else {
				readyG[ref.Reg] = done
			}
		}
		if done > critical {
			critical = done
		}
	}
	res.CriticalPath = critical
	return res
}
