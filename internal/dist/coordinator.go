package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lvp/client"
	"lvp/internal/obs"
	"lvp/internal/serve"
)

// The coordinator is the other half of distributed lvpd: a serve.CellRunner
// that fans a job's cells out across a fleet of ordinary lvpd workers over
// the internal cell-execution endpoint, reusing the client package's
// Retry-After-aware, jittered backoff for each RPC. Placement is
// least-loaded (each worker's /readyz-reported queue depth and in-flight
// counts plus our own outstanding dispatches), liveness is a periodic
// health probe plus immediate demotion on dispatch failure, and a per-cell
// attempt cap bounds how long a cell can bounce between dying workers.
//
// Determinism is inherited rather than re-proven: workers return the
// canonical result bytes (the same json.Marshal the local engine produces),
// the Manager merges them into index-addressed slots, and the NDJSON stream
// emits them in cell-index order — so coordinator output is byte-identical
// to a single-node exp.Suite run no matter which worker computed what, or
// how many times a cell was reassigned.

// ErrNoWorkers is returned when no healthy worker is available to place a
// cell on.
var ErrNoWorkers = errors.New("dist: no healthy workers")

// Config tunes a Coordinator.
type Config struct {
	// Workers is the fleet: one base URL per lvpd worker process
	// ("host:port" normalizes to "http://host:port"). Required.
	Workers []string
	// NewClient builds the per-worker client; nil selects client.New with
	// the default (jittered) retry policy. Tests inject fault-scoped
	// clients here.
	NewClient func(base string) (*client.Client, error)
	// Attempts caps how many workers one cell may be tried on before the
	// cell fails (<= 0 selects DefaultAttempts).
	Attempts int
	// HealthInterval paces the /readyz probe loop (<= 0 selects
	// DefaultHealthInterval).
	HealthInterval time.Duration
	// Metrics receives dist.dispatch.* counters, the per-worker latency
	// histograms and the healthy-worker gauge; nil disables collection.
	Metrics *obs.Registry
}

// DefaultAttempts is the per-cell attempt cap when none is given.
const DefaultAttempts = 3

// DefaultHealthInterval is the probe period when none is given.
const DefaultHealthInterval = 2 * time.Second

// worker is one fleet member plus the coordinator's view of it.
type worker struct {
	name string
	c    *client.Client

	// healthy is the probe/dispatch verdict; workers start healthy so the
	// first dispatch window before the first probe completes is usable.
	healthy atomic.Bool
	// load is the worker's last /readyz-reported placement score.
	load atomic.Int64
	// outstanding counts our own in-flight dispatches to this worker, so
	// placement reacts faster than the probe period.
	outstanding atomic.Int64

	latency *obs.Histogram
}

// Coordinator shards cells across a worker fleet. Its RunCell method is a
// serve.CellRunner, so plugging it into a Manager turns that daemon into
// the coordinator of a distributed lvpd deployment.
type Coordinator struct {
	cfg     Config
	workers []*worker
	metrics *obs.Registry

	ok, retries, failed *obs.Counter

	stopOnce sync.Once
	stopc    chan struct{}
	wg       sync.WaitGroup
}

// New builds a coordinator over cfg.Workers. It does not start the health
// loop; call Start.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("dist: coordinator needs at least one worker")
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = DefaultAttempts
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = DefaultHealthInterval
	}
	newClient := cfg.NewClient
	if newClient == nil {
		newClient = client.New
	}
	co := &Coordinator{
		cfg:     cfg,
		metrics: cfg.Metrics,
		ok:      cfg.Metrics.Counter("dist.dispatch.ok"),
		retries: cfg.Metrics.Counter("dist.dispatch.retry"),
		failed:  cfg.Metrics.Counter("dist.dispatch.failed"),
		stopc:   make(chan struct{}),
	}
	for _, addr := range cfg.Workers {
		base := normalizeWorkerURL(addr)
		c, err := newClient(base)
		if err != nil {
			return nil, fmt.Errorf("dist: worker %q: %w", addr, err)
		}
		w := &worker{
			name:    base,
			c:       c,
			latency: cfg.Metrics.Histogram(obs.LabeledName("dist.worker.latency_ns", "worker", base)),
		}
		w.healthy.Store(true)
		co.workers = append(co.workers, w)
	}
	return co, nil
}

// normalizeWorkerURL accepts "host:port" shorthand for "http://host:port".
func normalizeWorkerURL(addr string) string {
	if strings.Contains(addr, "://") {
		return addr
	}
	return "http://" + addr
}

// Start launches the background health loop: every HealthInterval each
// worker's /readyz is probed, refreshing its health verdict and placement
// load. An immediate probe round runs first so placement has real load data
// as soon as Start returns.
func (co *Coordinator) Start() {
	co.probeAll()
	co.wg.Add(1)
	go func() {
		defer co.wg.Done()
		t := time.NewTicker(co.cfg.HealthInterval)
		defer t.Stop()
		for {
			select {
			case <-co.stopc:
				return
			case <-t.C:
				co.probeAll()
			}
		}
	}()
}

// Stop ends the health loop and waits for it. Safe to call more than once;
// in-flight RunCell calls are unaffected (they stop via their contexts).
func (co *Coordinator) Stop() {
	co.stopOnce.Do(func() { close(co.stopc) })
	co.wg.Wait()
}

// probeAll refreshes every worker's health and load concurrently, bounded
// by the probe period so a hung worker cannot stall the loop.
func (co *Coordinator) probeAll() {
	ctx, cancel := context.WithTimeout(context.Background(), co.cfg.HealthInterval)
	defer cancel()
	var wg sync.WaitGroup
	for _, w := range co.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			rd, err := w.c.Readiness(ctx)
			if err != nil || !rd.Ready {
				w.healthy.Store(false)
				return
			}
			w.load.Store(int64(rd.Load()))
			w.healthy.Store(true)
		}(w)
	}
	wg.Wait()
	healthy := int64(0)
	for _, w := range co.workers {
		if w.healthy.Load() {
			healthy++
		}
	}
	co.metrics.Gauge("dist.workers.healthy").Set(healthy)
}

// Healthy reports how many workers the last probes considered alive.
func (co *Coordinator) Healthy() int {
	n := 0
	for _, w := range co.workers {
		if w.healthy.Load() {
			n++
		}
	}
	return n
}

// pick chooses the least-loaded healthy worker outside the excluded set
// (workers that already failed this cell), scoring by reported load plus
// our own outstanding dispatches. Ties break toward the earlier worker in
// the configured list.
func (co *Coordinator) pick(exclude map[*worker]bool) *worker {
	var best *worker
	var bestLoad int64
	for _, w := range co.workers {
		if exclude[w] || !w.healthy.Load() {
			continue
		}
		load := w.load.Load() + w.outstanding.Load()
		if best == nil || load < bestLoad {
			best, bestLoad = w, load
		}
	}
	return best
}

// RunCell is the serve.CellRunner: place the cell on the least-loaded
// healthy worker, reassigning to the next-best worker on transient failure
// up to the per-cell attempt cap. Invalid-cell rejections (4xx other than
// 429) fail immediately — no fleet can make a bad cell succeed. A worker
// that fails a dispatch is demoted until a health probe readmits it, so one
// dead worker costs each affected cell one reassignment, not a retry storm.
func (co *Coordinator) RunCell(ctx context.Context, cell serve.Cell, scale int) (json.RawMessage, error) {
	var lastErr error
	failed := map[*worker]bool{}
	for attempt := 0; attempt < co.cfg.Attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		w := co.pick(failed)
		if w == nil && len(failed) > 0 {
			// Every healthy worker already failed this cell; clear the
			// exclusion so the cap — not the fleet size — ends the loop.
			clear(failed)
			w = co.pick(failed)
		}
		if w == nil {
			lastErr = ErrNoWorkers
			co.retries.Inc()
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(co.cfg.HealthInterval):
			}
			continue
		}
		res, err := co.dispatch(ctx, w, cell, scale)
		if err == nil {
			co.ok.Inc()
			return res, nil
		}
		lastErr = err
		if fatal(err) {
			co.failed.Inc()
			return nil, err
		}
		failed[w] = true
		w.healthy.Store(false)
		co.retries.Inc()
	}
	co.failed.Inc()
	return nil, fmt.Errorf("dist: cell %s gave up after %d attempts: %w", cell, co.cfg.Attempts, lastErr)
}

// dispatch sends one cell to one worker under a dispatch span, feeding the
// per-worker latency histogram either way.
func (co *Coordinator) dispatch(ctx context.Context, w *worker, cell serve.Cell, scale int) (json.RawMessage, error) {
	w.outstanding.Add(1)
	defer w.outstanding.Add(-1)
	dctx, end := obs.StartSpan(ctx, "dispatch",
		slog.String("worker", w.name), slog.String("cell", cell.String()))
	start := time.Now()
	res, err := w.c.ExecCell(dctx, cell, scale)
	end()
	w.latency.Observe(int64(time.Since(start)))
	return res, err
}

// fatal reports errors no reassignment can fix: the server judged the cell
// itself invalid (4xx other than backpressure).
func fatal(err error) bool {
	var se *client.StatusError
	if !errors.As(err, &se) {
		return false
	}
	return se.Code >= 400 && se.Code < 500 && se.Code != http.StatusTooManyRequests
}
