// Package dist is the distributed serving subsystem: a coordinator that
// shards a job's experiment cells across a fleet of lvpd worker processes
// (coordinator.go) and a content-addressed result store (this file) that
// turns repeat cells — from any job, any tenant, or any daemon restart —
// into cache hits instead of re-simulations.
//
// The paper's premise, that value locality makes repeated computation
// predictable, applies at the serving layer verbatim: experiment cells are
// deterministic functions of their spec, so a canonical serialization of
// the spec is a sound content address for the result. The store hashes
// that serialization (SHA-256) into a key for a bounded in-memory LRU
// backed by an optional disk directory, which is what lets results survive
// restarts.
package dist

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"lvp/internal/obs"
	"lvp/internal/serve"
)

// keySpec is the canonical serialization of one cell at one scale. The
// field set and order are frozen by the V tag: any change to the cell
// schema that alters result bytes must bump V so stale disk entries can
// never alias a new-format cell.
type keySpec struct {
	V         int    `json:"v"`
	Kind      string `json:"kind"`
	Bench     string `json:"bench"`
	Machine   string `json:"machine"`
	Config    string `json:"config"`
	Target    string `json:"target"`
	Depths    []int  `json:"depths"`
	Predictor string `json:"predictor"`
	Scale     int    `json:"scale"`
}

// keyVersion is bumped whenever cell semantics change incompatibly.
const keyVersion = 1

// CellKey returns the content address of one cell spec at one scale: the
// SHA-256 of its canonical JSON serialization, hex-encoded. Scales <= 0
// normalize to 1, matching the engine's clamp, so the same work never gets
// two addresses.
func CellKey(cell serve.Cell, scale int) string {
	if scale <= 0 {
		scale = 1
	}
	b, err := json.Marshal(keySpec{
		V:         keyVersion,
		Kind:      cell.Kind,
		Bench:     cell.Bench,
		Machine:   cell.Machine,
		Config:    cell.Config,
		Target:    cell.Target,
		Depths:    cell.Depths,
		Predictor: cell.Predictor,
		Scale:     scale,
	})
	if err != nil {
		// A keySpec of plain strings and ints cannot fail to marshal.
		panic(fmt.Sprintf("dist: cell key marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// StoreConfig tunes a Store.
type StoreConfig struct {
	// Entries bounds the in-memory LRU (<= 0 selects DefaultStoreEntries).
	Entries int
	// Dir, when non-empty, persists every entry under this directory
	// (created if missing) so results survive restarts; in-memory misses
	// fall through to disk before being reported as misses.
	Dir string
	// Metrics receives dist.store.{hit,miss,evict,...}; nil disables
	// collection.
	Metrics *obs.Registry
}

// DefaultStoreEntries is the LRU capacity when none is given.
const DefaultStoreEntries = 4096

// Store is the content-addressed result cache: an LRU of result payloads
// keyed by CellKey, with optional write-through disk persistence. It
// implements serve.ResultStore, so it slots into the Manager in both
// single-node and coordinator mode. Safe for concurrent use.
type Store struct {
	cap int
	dir string

	mu  sync.Mutex
	ent map[string]*list.Element // key → LRU element holding *storeEntry
	lru *list.List               // front = most recently used

	hits, misses, evicts  *obs.Counter
	diskHits, puts, diskE *obs.Counter
}

type storeEntry struct {
	key string
	res json.RawMessage
}

// NewStore opens (creating Dir if configured) a content-addressed store.
func NewStore(cfg StoreConfig) (*Store, error) {
	if cfg.Entries <= 0 {
		cfg.Entries = DefaultStoreEntries
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("dist: store dir: %w", err)
		}
	}
	return &Store{
		cap:      cfg.Entries,
		dir:      cfg.Dir,
		ent:      map[string]*list.Element{},
		lru:      list.New(),
		hits:     cfg.Metrics.Counter("dist.store.hit"),
		misses:   cfg.Metrics.Counter("dist.store.miss"),
		evicts:   cfg.Metrics.Counter("dist.store.evict"),
		diskHits: cfg.Metrics.Counter("dist.store.disk_hit"),
		puts:     cfg.Metrics.Counter("dist.store.put"),
		diskE:    cfg.Metrics.Counter("dist.store.disk_error"),
	}, nil
}

// Get implements serve.ResultStore: the LRU first, then disk (a disk hit is
// promoted into the LRU). The returned bytes are the exact bytes Put stored.
func (s *Store) Get(cell serve.Cell, scale int) (json.RawMessage, bool) {
	return s.GetKey(CellKey(cell, scale))
}

// Put implements serve.ResultStore: store (and persist, when a directory is
// configured) one cell's result bytes.
func (s *Store) Put(cell serve.Cell, scale int, res json.RawMessage) {
	s.PutKey(CellKey(cell, scale), res)
}

// GetKey is Get by precomputed content address.
func (s *Store) GetKey(key string) (json.RawMessage, bool) {
	s.mu.Lock()
	if el, ok := s.ent[key]; ok {
		s.lru.MoveToFront(el)
		res := el.Value.(*storeEntry).res
		s.mu.Unlock()
		s.hits.Inc()
		return res, true
	}
	s.mu.Unlock()

	if s.dir != "" {
		if res, err := os.ReadFile(s.path(key)); err == nil && json.Valid(res) {
			s.insert(key, res)
			s.hits.Inc()
			s.diskHits.Inc()
			return res, true
		}
	}
	s.misses.Inc()
	return nil, false
}

// PutKey is Put by precomputed content address.
func (s *Store) PutKey(key string, res json.RawMessage) {
	s.insert(key, res)
	s.puts.Inc()
	if s.dir == "" {
		return
	}
	// Write-through: temp file + rename so a crashed write can never leave
	// a torn entry behind (Get additionally validates JSON on read).
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		s.diskE.Inc()
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), key+".tmp*")
	if err != nil {
		s.diskE.Inc()
		return
	}
	if _, err := tmp.Write(res); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		s.diskE.Inc()
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		s.diskE.Inc()
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		s.diskE.Inc()
	}
}

// insert adds or refreshes one LRU entry, evicting from the cold end when
// over capacity (disk entries survive eviction; only memory is bounded).
func (s *Store) insert(key string, res json.RawMessage) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.ent[key]; ok {
		el.Value.(*storeEntry).res = res
		s.lru.MoveToFront(el)
		return
	}
	s.ent[key] = s.lru.PushFront(&storeEntry{key: key, res: res})
	for s.lru.Len() > s.cap {
		cold := s.lru.Back()
		s.lru.Remove(cold)
		delete(s.ent, cold.Value.(*storeEntry).key)
		s.evicts.Inc()
	}
}

// Len reports the number of in-memory entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// path shards disk entries by the key's first byte to keep directories
// small under millions of cached cells.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}
