package dist

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"lvp/internal/obs"
	"lvp/internal/serve"
)

func simCell(bench, machine, config string) serve.Cell {
	return serve.Cell{Kind: "sim", Bench: bench, Machine: machine, Config: config}
}

// TestCellKeyCanonical pins the content address: stable for the same spec,
// distinct for every field that changes result bytes, and scale 0 aliases
// scale 1 (the engine's clamp) so the same work never has two addresses.
func TestCellKeyCanonical(t *testing.T) {
	base := simCell("quick", serve.Machine21164, serve.ConfigNone)
	key := CellKey(base, 1)
	if key != CellKey(base, 1) {
		t.Error("same cell hashed to different keys")
	}
	if len(key) != 64 {
		t.Errorf("key %q is not a sha256 hex digest", key)
	}
	if CellKey(base, 0) != key {
		t.Error("scale 0 should alias scale 1")
	}

	variants := []struct {
		name string
		cell serve.Cell
		sc   int
	}{
		{"bench", simCell("grep", serve.Machine21164, serve.ConfigNone), 1},
		{"machine", simCell("quick", serve.Machine620, serve.ConfigNone), 1},
		{"config", simCell("quick", serve.Machine21164, "Simple"), 1},
		{"kind", serve.Cell{Kind: "locality", Bench: "quick", Target: "ppc", Depths: []int{1}}, 1},
		{"depths", serve.Cell{Kind: "locality", Bench: "quick", Target: "ppc", Depths: []int{1, 4}}, 1},
		{"predictor", serve.Cell{Kind: "zoo", Bench: "quick", Predictor: "stride"}, 1},
		{"scale", base, 2},
	}
	seen := map[string]string{key: "base"}
	for _, v := range variants {
		k := CellKey(v.cell, v.sc)
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %q collides with %q", v.name, prev)
		}
		seen[k] = v.name
	}
}

// TestStoreLRUEviction pins the memory bound: the coldest entry leaves when
// capacity is exceeded, and (with no disk) an evicted key misses.
func TestStoreLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := NewStore(StoreConfig{Entries: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"aa1", "bb2", "cc3"} {
		s.PutKey(k, json.RawMessage(`{"k":"`+k+`"}`))
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if got := reg.Counter("dist.store.evict").Value(); got != 1 {
		t.Errorf("evict counter = %d, want 1", got)
	}
	if _, ok := s.GetKey("aa1"); ok {
		t.Error("evicted key still hits")
	}
	if _, ok := s.GetKey("cc3"); !ok {
		t.Error("fresh key misses")
	}

	// Touching the cold end first makes the middle entry the victim.
	s.GetKey("bb2")
	s.PutKey("dd4", json.RawMessage(`{}`))
	if _, ok := s.GetKey("bb2"); !ok {
		t.Error("recently-used key was evicted")
	}
	if _, ok := s.GetKey("cc3"); ok {
		t.Error("cold key survived over recently-used one")
	}
}

// TestStoreDiskPersistence pins the restart story: a fresh Store over the
// same directory serves the old entries (counted as disk hits), and a torn
// or corrupted file degrades to a miss rather than a bad result.
func TestStoreDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	cell := simCell("quick", serve.Machine21164, serve.ConfigNone)
	res := json.RawMessage(`{"instructions": 42}`)

	s1, err := NewStore(StoreConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s1.Put(cell, 1, res)

	reg := obs.NewRegistry()
	s2, err := NewStore(StoreConfig{Dir: dir, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(cell, 1)
	if !ok {
		t.Fatal("restarted store misses a persisted entry")
	}
	if !bytes.Equal(got, res) {
		t.Errorf("restarted store returned %s, want %s", got, res)
	}
	if reg.Counter("dist.store.disk_hit").Value() != 1 {
		t.Error("disk hit not counted")
	}
	// Now promoted: a second read is a pure memory hit.
	if _, ok := s2.Get(cell, 1); !ok {
		t.Fatal("promoted entry misses")
	}
	if got := reg.Counter("dist.store.disk_hit").Value(); got != 1 {
		t.Errorf("disk_hit = %d after promotion, want still 1", got)
	}

	// Corrupt the file on disk: a fresh store must treat it as a miss.
	key := CellKey(cell, 1)
	path := filepath.Join(dir, key[:2], key+".json")
	if err := os.WriteFile(path, []byte(`{"instructions":`), 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := NewStore(StoreConfig{Dir: dir, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s3.Get(cell, 1); ok {
		t.Error("corrupted disk entry served as a hit")
	}
}
