package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"lvp/client"
	"lvp/internal/exp"
	"lvp/internal/obs"
	"lvp/internal/serve"
)

// The distributed acceptance gate lives here: a coordinator fronting
// in-process workers must stream NDJSON byte-identical to a single-node
// daemon — including while a worker is being killed mid-job — and a repeat
// job against a persistent store must be served without simulating a
// single cell.

// fastClient builds a worker client with millisecond backoff so failover
// tests don't sit in real retry sleeps.
func fastClient(base string) (*client.Client, error) {
	c, err := client.New(base)
	if err != nil {
		return nil, err
	}
	return c.WithRetry(client.RetryPolicy{
		MaxAttempts: 2,
		BaseDelay:   time.Millisecond,
		MaxDelay:    10 * time.Millisecond,
		Jitter:      true,
	}), nil
}

// testWorker is one in-process lvpd worker: a Manager behind a real HTTP
// server, optionally wrapped by mid.
func testWorker(t *testing.T, mid func(http.Handler) http.Handler) (*serve.Manager, *httptest.Server) {
	t.Helper()
	mgr := serve.NewManager(serve.Config{Workers: 2})
	var h http.Handler = serve.NewHandler(mgr)
	if mid != nil {
		h = mid(h)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	t.Cleanup(func() { shutdownNow(t, mgr) })
	return mgr, srv
}

func shutdownNow(t *testing.T, m *serve.Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Errorf("manager shutdown: %v", err)
	}
}

// runJob submits spec, waits for the job to finish, and returns the raw
// NDJSON results body — the byte stream under the identity contract.
func runJob(t *testing.T, base string, spec serve.JobSpec) []byte {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}

	// The results endpoint streams until the job is done, so one GET both
	// waits and captures the canonical byte stream.
	resp, err = http.Get(base + "/v1/jobs/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results status = %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// coordinatorServer stands up a coordinator Manager over the given worker
// URLs and returns its base URL plus the coordinator for assertions.
func coordinatorServer(t *testing.T, reg *obs.Registry, start bool, workers ...string) (string, *Coordinator) {
	t.Helper()
	co, err := New(Config{
		Workers:        workers,
		NewClient:      fastClient,
		HealthInterval: 50 * time.Millisecond,
		Metrics:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if start {
		co.Start()
		t.Cleanup(co.Stop)
	}
	mgr := serve.NewManager(serve.Config{CellRunner: co.RunCell, Metrics: reg})
	srv := httptest.NewServer(serve.NewHandler(mgr))
	t.Cleanup(srv.Close)
	t.Cleanup(func() { shutdownNow(t, mgr) })
	return srv.URL, co
}

// distSpec exercises every cell kind across both worker dispatch orders:
// four sims, a locality sweep, and a zoo cell.
func distSpec() serve.JobSpec {
	return serve.JobSpec{
		Benchmarks:      []string{"quick"},
		Machines:        []string{serve.Machine21164, serve.Machine620},
		Configs:         []string{serve.ConfigNone, "Simple"},
		LocalityTargets: []string{"ppc"},
		LocalityDepths:  []int{1, 4},
		Predictors:      []string{"stride"},
	}
}

// TestCoordinatorByteIdentity is the tentpole gate: the coordinator's
// merged NDJSON stream is byte-for-byte the single-node daemon's stream for
// the same spec, and its first cell matches the engine run directly.
func TestCoordinatorByteIdentity(t *testing.T) {
	_, w1 := testWorker(t, nil)
	_, w2 := testWorker(t, nil)

	reg := obs.NewRegistry()
	base, _ := coordinatorServer(t, reg, true, w1.URL, w2.URL)
	got := runJob(t, base, distSpec())

	// Single-node reference for the same spec.
	_, solo := testWorker(t, nil)
	want := runJob(t, solo.URL, distSpec())

	if !bytes.Equal(got, want) {
		t.Errorf("coordinator stream differs from single-node stream\n coord: %s\n  solo: %s", got, want)
	}
	if reg.Counter("dist.dispatch.ok").Value() == 0 {
		t.Error("no cells were dispatched to workers")
	}

	// Anchor against the engine: the first cell (21164/none) must carry the
	// exact marshal of the direct exp.Suite result.
	var first serve.Event
	if err := json.Unmarshal(bytes.SplitN(got, []byte("\n"), 2)[0], &first); err != nil {
		t.Fatal(err)
	}
	direct := exp.NewSuiteParallel(1, 2)
	stats, err := direct.Sim21164("quick", nil)
	if err != nil {
		t.Fatal(err)
	}
	wantFirst, _ := json.Marshal(stats)
	if !bytes.Equal(first.Result, wantFirst) {
		t.Errorf("first cell result differs from direct engine run\n remote: %s\n direct: %s", first.Result, wantFirst)
	}
}

// TestCoordinatorFailover kills one worker's cell endpoint for the whole
// job and demands the full stream anyway, byte-identical, with the dead
// worker demoted and every one of its cells reassigned — then verifies the
// fleet teardown leaks no goroutines.
func TestCoordinatorFailover(t *testing.T) {
	// Registered before anything is stood up, so this cleanup runs after
	// every server/manager/coordinator teardown (LIFO): a dead worker must
	// not leak dispatchers or probes.
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before+5 {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Errorf("goroutines: %d before, %d after teardown", before, runtime.NumGoroutine())
	})

	var aborted atomic.Int64
	_, w1 := testWorker(t, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && r.URL.Path == "/v1/cells" {
				// Drop the connection mid-response: the harshest failure a
				// worker can present short of a network partition.
				aborted.Add(1)
				panic(http.ErrAbortHandler)
			}
			next.ServeHTTP(w, r)
		})
	})
	_, w2 := testWorker(t, nil)

	reg := obs.NewRegistry()
	// No Start(): workers begin optimistically healthy and no probe loop
	// runs, so w1's demotion on its first failed dispatch is permanent and
	// the test cannot race a readmission (w1's /readyz still answers).
	base, co := coordinatorServer(t, reg, false, w1.URL, w2.URL)
	got := runJob(t, base, distSpec())

	_, solo := testWorker(t, nil)
	want := runJob(t, solo.URL, distSpec())

	if !bytes.Equal(got, want) {
		t.Errorf("stream under failover differs from single-node stream\n coord: %s\n  solo: %s", got, want)
	}
	if aborted.Load() == 0 {
		t.Error("failing worker was never tried: failover untested")
	}
	if reg.Counter("dist.dispatch.retry").Value() == 0 {
		t.Error("no reassignment recorded despite a dead worker")
	}
	if co.Healthy() != 1 {
		t.Errorf("Healthy() = %d after failover, want 1 (dead worker demoted)", co.Healthy())
	}
}

// TestRunCellNoWorkers pins the empty-fleet error path: a coordinator whose
// workers are all demoted fails cells with ErrNoWorkers once the context
// expires, rather than spinning.
func TestRunCellNoWorkers(t *testing.T) {
	_, w1 := testWorker(t, nil)
	co, err := New(Config{
		Workers:        []string{w1.URL},
		NewClient:      fastClient,
		HealthInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	co.workers[0].healthy.Store(false)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err = co.RunCell(ctx, serve.Cell{Kind: "sim", Bench: "quick", Machine: serve.Machine21164, Config: serve.ConfigNone}, 1)
	if err == nil {
		t.Fatal("RunCell succeeded with no healthy workers")
	}
}

// TestPickLeastLoaded pins placement: lowest reported-plus-outstanding load
// wins, ties break toward the earlier worker, excluded and unhealthy
// workers never place.
func TestPickLeastLoaded(t *testing.T) {
	co, err := New(Config{Workers: []string{"a:1", "b:1", "c:1"}, NewClient: fastClient})
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := co.workers[0], co.workers[1], co.workers[2]

	a.load.Store(5)
	b.load.Store(2)
	c.load.Store(2)
	c.outstanding.Store(1)
	if w := co.pick(nil); w != b {
		t.Errorf("pick chose %s, want b (lowest load)", w.name)
	}
	if w := co.pick(map[*worker]bool{b: true}); w != c {
		t.Errorf("pick with b excluded chose %s, want c", w.name)
	}
	b.load.Store(5) // a and b tie at 5; earlier worker wins
	c.healthy.Store(false)
	if w := co.pick(nil); w != a {
		t.Errorf("tie-break chose %s, want a (earlier in list)", w.name)
	}
	a.healthy.Store(false)
	b.healthy.Store(false)
	if w := co.pick(nil); w != nil {
		t.Errorf("pick with no healthy workers = %s, want nil", w.name)
	}
}

// TestNormalizeWorkerURL pins the host:port shorthand.
func TestNormalizeWorkerURL(t *testing.T) {
	for in, want := range map[string]string{
		"host:8347":          "http://host:8347",
		"http://host:8347":   "http://host:8347",
		"https://host:10443": "https://host:10443",
	} {
		if got := normalizeWorkerURL(in); got != want {
			t.Errorf("normalizeWorkerURL(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestStoreRestartHit is the persistence acceptance test: a daemon restart
// (new Manager, new Store over the same directory) serves a repeated job
// spec entirely from the store — zero simulated cells — with byte-identical
// results.
func TestStoreRestartHit(t *testing.T) {
	dir := t.TempDir()
	spec := distSpec()

	// First life: compute everything, write through to disk.
	store1, err := NewStore(StoreConfig{Dir: dir, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	mgr1 := serve.NewManager(serve.Config{Workers: 2, Store: store1})
	srv1 := httptest.NewServer(serve.NewHandler(mgr1))
	first := runJob(t, srv1.URL, spec)
	shutdownNow(t, mgr1)
	srv1.Close()

	// Second life: fresh process state, same store directory. Counting the
	// cells via a CellRunner spy proves nothing was simulated.
	reg := obs.NewRegistry()
	store2, err := NewStore(StoreConfig{Dir: dir, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	var computed atomic.Int64
	mgr2 := serve.NewManager(serve.Config{
		Workers: 2,
		Store:   store2,
		Metrics: reg,
		CellRunner: func(ctx context.Context, cell serve.Cell, scale int) (json.RawMessage, error) {
			computed.Add(1)
			return nil, fmt.Errorf("cell %s not in store: restart hit must not compute", cell)
		},
	})
	srv2 := httptest.NewServer(serve.NewHandler(mgr2))
	defer srv2.Close()
	defer shutdownNow(t, mgr2)
	second := runJob(t, srv2.URL, spec)

	if !bytes.Equal(first, second) {
		t.Errorf("restarted store changed the stream\n first: %s\nsecond: %s", first, second)
	}
	if n := computed.Load(); n != 0 {
		t.Errorf("%d cells were computed after restart, want 0 (all from store)", n)
	}
	cells := int64(bytes.Count(first, []byte("\n")) - 1) // minus the done event
	if got := reg.Counter("dist.store.hit").Value(); got != cells {
		t.Errorf("dist.store.hit = %d, want %d", got, cells)
	}
	if got := reg.Counter("dist.store.disk_hit").Value(); got != cells {
		t.Errorf("dist.store.disk_hit = %d, want %d", got, cells)
	}
	if got := reg.Counter("dist.store.miss").Value(); got != 0 {
		t.Errorf("dist.store.miss = %d, want 0", got)
	}
}

// TestCoordinatorWithStore wires both tentpole halves together: the
// coordinator consults the store before dispatching, so a repeated job
// costs zero RPCs.
func TestCoordinatorWithStore(t *testing.T) {
	_, w1 := testWorker(t, nil)

	reg := obs.NewRegistry()
	store, err := NewStore(StoreConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	co, err := New(Config{Workers: []string{w1.URL}, NewClient: fastClient, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	mgr := serve.NewManager(serve.Config{CellRunner: co.RunCell, Store: store, Metrics: reg})
	srv := httptest.NewServer(serve.NewHandler(mgr))
	defer srv.Close()
	defer shutdownNow(t, mgr)

	first := runJob(t, srv.URL, distSpec())
	dispatched := reg.Counter("dist.dispatch.ok").Value()
	if dispatched == 0 {
		t.Fatal("first run dispatched nothing")
	}
	second := runJob(t, srv.URL, distSpec())
	if !bytes.Equal(first, second) {
		t.Error("repeat job changed the stream")
	}
	if got := reg.Counter("dist.dispatch.ok").Value(); got != dispatched {
		t.Errorf("repeat job dispatched %d new cells, want 0", got-dispatched)
	}
}
