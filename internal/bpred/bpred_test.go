package bpred

import (
	"testing"

	"lvp/internal/isa"
	"lvp/internal/trace"
)

func TestBHTLearnsBias(t *testing.T) {
	p := New(Default620)
	pc := uint64(0x1000)
	// Train taken.
	for range 10 {
		p.ResolveCond(pc, true)
	}
	if !p.PredictCond(pc) {
		t.Error("BHT should predict taken after training")
	}
	// One not-taken blip must not flip a saturated counter.
	p.ResolveCond(pc, false)
	if !p.PredictCond(pc) {
		t.Error("2-bit hysteresis should survive one blip")
	}
}

func TestBHTAlternatingMispredicts(t *testing.T) {
	p := New(Default620)
	pc := uint64(0x1000)
	for i := range 100 {
		p.ResolveCond(pc, i%2 == 0)
	}
	st := p.Stats()
	if st.CondBranches != 100 {
		t.Fatalf("branches = %d", st.CondBranches)
	}
	if st.CondAccuracy() > 0.7 {
		t.Errorf("alternating pattern accuracy %.2f; 2-bit BHT should do poorly", st.CondAccuracy())
	}
}

func TestBTBIndirect(t *testing.T) {
	p := New(Default620)
	pc := uint64(0x2000)
	if !p.ResolveIndirect(pc, 0x5000) {
		t.Error("first indirect must miss")
	}
	if p.ResolveIndirect(pc, 0x5000) {
		t.Error("repeated target must hit")
	}
	if !p.ResolveIndirect(pc, 0x6000) {
		t.Error("changed target must miss")
	}
}

func TestRAS(t *testing.T) {
	p := New(Config{BHTEntries: 16, BTBEntries: 16, RASDepth: 2})
	p.Call(0x100)
	p.Call(0x200)
	if !p.Return(0x200) || !p.Return(0x100) {
		t.Error("RAS should predict nested returns")
	}
	if p.Return(0x300) {
		t.Error("empty RAS must mispredict")
	}
	// Overflow drops the oldest entry.
	p.Call(0x1)
	p.Call(0x2)
	p.Call(0x3)
	if !p.Return(0x3) || !p.Return(0x2) {
		t.Error("newest entries must survive overflow")
	}
	if p.Return(0x1) {
		t.Error("oldest entry should have been dropped")
	}
}

func TestResolvePolicy(t *testing.T) {
	p := New(Default620)
	// Direct call never mispredicts and pushes the RAS.
	call := &trace.Record{PC: 0x1000, Op: isa.JAL, Rd: 31, Taken: true, Targ: 0x2000}
	if p.Resolve(call) {
		t.Error("direct call must not mispredict")
	}
	// Matching return hits the RAS.
	ret := &trace.Record{PC: 0x2010, Op: isa.JALR, Rd: 0, Ra: 31, Taken: true, Targ: 0x1004}
	if p.Resolve(ret) {
		t.Error("return to pushed address must predict")
	}
	// Return with empty RAS mispredicts.
	if !p.Resolve(ret) {
		t.Error("return with empty RAS must mispredict")
	}
	// Conditional branch flows into the BHT.
	cond := &trace.Record{PC: 0x3000, Op: isa.BEQ, Taken: true, Targ: 0x3010}
	p.Resolve(cond)
	if p.Stats().CondBranches != 1 {
		t.Error("conditional branch not counted")
	}
	// Indirect jump uses the BTB.
	ind := &trace.Record{PC: 0x4000, Op: isa.JALR, Rd: 0, Ra: 5, Taken: true, Targ: 0x9000}
	if !p.Resolve(ind) {
		t.Error("first indirect jump must mispredict")
	}
	if p.Resolve(ind) {
		t.Error("repeated indirect jump must predict")
	}
}

func TestCeilPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 1000: 1024, 2048: 2048}
	for in, want := range cases {
		if got := ceilPow2(in); got != want {
			t.Errorf("ceilPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
