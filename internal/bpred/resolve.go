package bpred

import (
	"lvp/internal/isa"
	"lvp/internal/trace"
)

// Resolve consults and trains the predictor for one dynamic control-transfer
// record and reports whether it mispredicted (direction or target). Both
// machine models share this policy: conditional branches through the BHT,
// returns through the RAS, other indirect transfers through the BTB, and
// direct jumps/calls always predicted (fetched via the BTAC).
func (p *Predictor) Resolve(r *trace.Record) bool {
	const linkReg = isa.Reg(31)
	switch {
	case isa.IsCondBranch(r.Op):
		return p.ResolveCond(r.PC, r.Taken)
	case r.Op == isa.JAL:
		if r.Rd == linkReg {
			p.Call(r.PC + isa.InstBytes)
		}
		return false
	case r.Op == isa.JALR:
		if r.Rd == linkReg { // indirect call
			p.Call(r.PC + isa.InstBytes)
			return p.ResolveIndirect(r.PC, r.Targ)
		}
		if r.Ra == linkReg { // return
			return !p.Return(r.Targ)
		}
		return p.ResolveIndirect(r.PC, r.Targ)
	}
	return false
}
