// Package bpred provides the branch-prediction substrate used by both
// machine models: a table of 2-bit saturating counters (BHT) for
// conditional-branch direction, a BTB for indirect-branch targets, and a
// return-address stack.
package bpred

import "lvp/internal/isa"

// Config sizes the predictor. The defaults mirror the PowerPC 620's
// 2048-entry BHT and 256-entry BTAC.
type Config struct {
	BHTEntries int
	BTBEntries int
	RASDepth   int
}

// Default620 is the PowerPC 620's predictor configuration.
var Default620 = Config{BHTEntries: 2048, BTBEntries: 256, RASDepth: 8}

// Default21164 approximates the Alpha 21164's per-line history predictor
// with a same-capacity BHT.
var Default21164 = Config{BHTEntries: 2048, BTBEntries: 256, RASDepth: 12}

// Stats counts prediction outcomes.
type Stats struct {
	CondBranches   int
	CondMispredict int
	Indirect       int
	IndirectMiss   int
}

// CondAccuracy is the conditional-branch direction accuracy.
func (s Stats) CondAccuracy() float64 {
	if s.CondBranches == 0 {
		return 1
	}
	return 1 - float64(s.CondMispredict)/float64(s.CondBranches)
}

// Predictor is a BHT + BTB + RAS branch predictor.
type Predictor struct {
	bht   []uint8
	bhtM  uint64
	btb   []btbEntry
	btbM  uint64
	ras   []uint64
	rasSz int
	stats Stats
}

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
}

// New builds a predictor (table sizes rounded up to powers of two).
func New(cfg Config) *Predictor {
	p := &Predictor{rasSz: cfg.RASDepth}
	nb := ceilPow2(cfg.BHTEntries)
	p.bht = make([]uint8, nb)
	p.bhtM = uint64(nb - 1)
	// Weakly-taken initial state.
	for i := range p.bht {
		p.bht[i] = 2
	}
	nt := ceilPow2(cfg.BTBEntries)
	p.btb = make([]btbEntry, nt)
	p.btbM = uint64(nt - 1)
	return p
}

func ceilPow2(n int) int {
	if n < 1 {
		n = 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Stats returns the accumulated outcome counts.
func (p *Predictor) Stats() Stats { return p.stats }

func (p *Predictor) bhtIdx(pc uint64) int { return int((pc / isa.InstBytes) & p.bhtM) }
func (p *Predictor) btbIdx(pc uint64) int { return int((pc / isa.InstBytes) & p.btbM) }

// PredictCond predicts the direction of the conditional branch at pc.
func (p *Predictor) PredictCond(pc uint64) bool {
	return p.bht[p.bhtIdx(pc)] >= 2
}

// ResolveCond trains the BHT and reports whether the branch mispredicted.
func (p *Predictor) ResolveCond(pc uint64, taken bool) (mispredicted bool) {
	p.stats.CondBranches++
	pred := p.PredictCond(pc)
	i := p.bhtIdx(pc)
	if taken {
		if p.bht[i] < 3 {
			p.bht[i]++
		}
	} else if p.bht[i] > 0 {
		p.bht[i]--
	}
	if pred != taken {
		p.stats.CondMispredict++
		return true
	}
	return false
}

// ResolveIndirect predicts the target of an indirect transfer via the BTB,
// trains it with the actual target, and reports a target mispredict.
func (p *Predictor) ResolveIndirect(pc, actual uint64) (mispredicted bool) {
	p.stats.Indirect++
	i := p.btbIdx(pc)
	e := &p.btb[i]
	hit := e.valid && e.tag == pc && e.target == actual
	e.tag, e.target, e.valid = pc, actual, true
	if !hit {
		p.stats.IndirectMiss++
		return true
	}
	return false
}

// Call pushes a return address on the RAS.
func (p *Predictor) Call(returnAddr uint64) {
	if len(p.ras) >= p.rasSz && p.rasSz > 0 {
		copy(p.ras, p.ras[1:])
		p.ras = p.ras[:len(p.ras)-1]
	}
	p.ras = append(p.ras, returnAddr)
}

// Return pops and reports whether the RAS correctly predicted the actual
// return target.
func (p *Predictor) Return(actual uint64) (correct bool) {
	if len(p.ras) == 0 {
		return false
	}
	top := p.ras[len(p.ras)-1]
	p.ras = p.ras[:len(p.ras)-1]
	return top == actual
}
