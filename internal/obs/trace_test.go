package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestParseChannels(t *testing.T) {
	cases := []struct {
		in   string
		want Channel
		err  bool
	}{
		{"", ChanNone, false},
		{"none", ChanNone, false},
		{"lvpt", ChanLVPT, false},
		{"lvpt,cvu", ChanLVPT | ChanCVU, false},
		{" lct , sim ", ChanLCT | ChanSim, false},
		{"all", ChanAll, false},
		{"cache,pipeline", ChanCache | ChanPipeline, false},
		{"bogus", 0, true},
	}
	for _, c := range cases {
		got, err := ParseChannels(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseChannels(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("ParseChannels(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestChannelString(t *testing.T) {
	if got := (ChanLVPT | ChanCVU).String(); got != "lvpt,cvu" {
		t.Errorf("String() = %q, want %q", got, "lvpt,cvu")
	}
	if got := ChanNone.String(); got != "none" {
		t.Errorf("String() = %q, want %q", got, "none")
	}
}

// TestDisabledChannelZeroEmission is the satellite gate: with a channel off,
// Emit must write nothing at all.
func TestDisabledChannelZeroEmission(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, ChanLVPT)
	tr.Emit(ChanCVU, "insert", slog.Int("index", 3))
	tr.Emit(ChanSim, "squash")
	if buf.Len() != 0 {
		t.Errorf("disabled channels emitted %d bytes: %q", buf.Len(), buf.String())
	}
	tr.Emit(ChanLVPT, "load")
	if buf.Len() == 0 {
		t.Error("enabled channel emitted nothing")
	}
}

// TestNilTracer checks the permanently-disabled nil tracer is safe to use.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if tr.Enabled(ChanLVPT) {
		t.Error("nil tracer reports enabled")
	}
	tr.Emit(ChanLVPT, "load") // must not panic
	if NewTracer(&bytes.Buffer{}, 0) != nil {
		t.Error("NewTracer with empty mask should return nil")
	}
}

// TestEmitJSONL checks every emitted line is a standalone JSON object with
// the event name and channel tag, and no time/level noise.
func TestEmitJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, ChanLVPT|ChanCVU)
	tr.Emit(ChanLVPT, "load", slog.String("pc", "0x1000"), slog.Bool("correct", true))
	tr.Emit(ChanCVU, "insert", slog.Int("index", 5))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not valid JSON: %v", err)
	}
	if first["msg"] != "load" || first["chan"] != "lvpt" || first["pc"] != "0x1000" || first["correct"] != true {
		t.Errorf("unexpected event payload: %v", first)
	}
	if _, ok := first["time"]; ok {
		t.Error("event carries a time field; records should be lean")
	}
	if _, ok := first["level"]; ok {
		t.Error("event carries a level field; records should be lean")
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 1 not valid JSON: %v", err)
	}
	if second["msg"] != "insert" || second["chan"] != "cvu" || second["index"] != float64(5) {
		t.Errorf("unexpected event payload: %v", second)
	}
}

// TestConcurrentEmit races 64 emitters into one tracer and checks every
// line survives intact (slog handlers serialize writes).
func TestConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, ChanSim)
	var wg sync.WaitGroup
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Emit(ChanSim, "event", slog.Int("g", g), slog.Int("i", i))
			}
		}(g)
	}
	wg.Wait()

	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("corrupt line %d: %v", n, err)
		}
		n++
	}
	if n != 64*50 {
		t.Errorf("got %d events, want %d", n, 64*50)
	}
}
