package obs

import (
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on http.DefaultServeMux
	"os"
)

// StartDebugServer serves net/http/pprof and expvar (/debug/vars) on addr in
// a background goroutine, for the lifetime of the process. name prefixes the
// error line if the listener fails — the server is a debugging aid, so a
// bind failure is reported on stderr rather than aborting the run. A command
// that wants its metrics registry visible at /debug/vars should call
// Registry.Publish before this.
func StartDebugServer(addr, name string) {
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "%s: pprof: %v\n", name, err)
		}
	}()
}
