package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Zero-dependency Prometheus text exposition (format version 0.0.4). The
// registry's flat metric names map onto Prometheus families:
//
//	counter  a.b.c        -> <ns>_a_b_c_total    (counter)
//	gauge    a.b.c        -> <ns>_a_b_c          (gauge) + <ns>_a_b_c_max
//	timer    a.b.c        -> <ns>_a_b_c_ns       (summary: _sum/_count)
//	histogram a.b.c_ns    -> <ns>_a_b_c_ns       (histogram: _bucket/_sum/_count)
//
// A registry name may carry a trailing label block in the form produced by
// LabeledName — base{k1="v1",...} — which becomes the sample's label set;
// series of one family group under a single # TYPE line. Output is
// deterministic: families sort by name, label sets by their rendered form,
// histogram buckets ascend and end at le="+Inf".

// LabeledName renders base plus key/value label pairs in the registry's
// labeled-name form, base{k1="v1",k2="v2"}, escaping label values per the
// exposition format (backslash, double quote, newline). Keys must be valid
// Prometheus label names ([a-zA-Z_][a-zA-Z0-9_]*); the caller owns that, as
// labels come from code, never from request data.
func LabeledName(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// splitLabels separates a registry name into its base and the raw label
// block ("" when unlabeled).
func splitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// sanitizeMetricName maps a registry base name onto the Prometheus metric
// name charset [a-zA-Z0-9_:], replacing everything else with '_'.
func sanitizeMetricName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promSample is one exposition line under a family: name+suffix{labels} value.
type promSample struct {
	suffix string
	labels string
	value  string
}

type promFamily struct {
	name    string
	typ     string
	samples []promSample
}

// promBuilder accumulates families in deterministic order.
type promBuilder struct {
	byName map[string]*promFamily
}

func (p *promBuilder) family(name, typ string) *promFamily {
	f := p.byName[name]
	if f == nil {
		f = &promFamily{name: name, typ: typ}
		p.byName[name] = f
	}
	return f
}

func (f *promFamily) add(suffix, labels, value string) {
	f.samples = append(f.samples, promSample{suffix: suffix, labels: labels, value: value})
}

// mergeLabels appends extra to a (possibly empty) raw label block.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// WritePrometheus renders the registry as Prometheus exposition text under
// the given namespace prefix ("lvp" conventionally). Values are exported in
// their native units — durations are nanoseconds, flagged by the `_ns` name
// suffix — since the scraper's rate()/histogram_quantile() are unit-agnostic.
func (r *Registry) WritePrometheus(w io.Writer, namespace string) error {
	snap := r.Snapshot()
	ns := ""
	if namespace != "" {
		ns = sanitizeMetricName(namespace) + "_"
	}
	p := &promBuilder{byName: map[string]*promFamily{}}

	for _, name := range sortedKeys(snap.Counters) {
		base, labels := splitLabels(name)
		f := p.family(ns+sanitizeMetricName(base)+"_total", "counter")
		f.add("", labels, strconv.FormatInt(snap.Counters[name], 10))
	}
	for _, name := range sortedKeys(snap.Gauges) {
		base, labels := splitLabels(name)
		g := snap.Gauges[name]
		fname := ns + sanitizeMetricName(base)
		p.family(fname, "gauge").add("", labels, strconv.FormatInt(g.Value, 10))
		p.family(fname+"_max", "gauge").add("", labels, strconv.FormatInt(g.Max, 10))
	}
	for _, name := range sortedKeys(snap.Timers) {
		base, labels := splitLabels(name)
		t := snap.Timers[name]
		f := p.family(ns+sanitizeMetricName(base)+"_ns", "summary")
		f.add("_sum", labels, strconv.FormatInt(t.TotalNS, 10))
		f.add("_count", labels, strconv.FormatInt(t.Count, 10))
	}
	for _, name := range sortedKeys(snap.Histograms) {
		base, labels := splitLabels(name)
		h := snap.Histograms[name]
		f := p.family(ns+sanitizeMetricName(base), "histogram")
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			le := `le="` + strconv.FormatInt(b.LE, 10) + `"`
			f.add("_bucket", mergeLabels(labels, le), strconv.FormatInt(cum, 10))
		}
		f.add("_bucket", mergeLabels(labels, `le="+Inf"`), strconv.FormatInt(h.Count, 10))
		f.add("_sum", labels, strconv.FormatInt(h.Sum, 10))
		f.add("_count", labels, strconv.FormatInt(h.Count, 10))
	}

	names := make([]string, 0, len(p.byName))
	for name := range p.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	for _, name := range names {
		f := p.byName[name]
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ)
		bw.WriteByte('\n')
		for _, s := range f.samples {
			bw.WriteString(f.name)
			bw.WriteString(s.suffix)
			if s.labels != "" {
				bw.WriteByte('{')
				bw.WriteString(s.labels)
				bw.WriteByte('}')
			}
			bw.WriteByte(' ')
			bw.WriteString(s.value)
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
