package obs

import (
	"context"
	"testing"
	"time"
)

// The check-obs overhead gates: telemetry left compiled into hot paths must
// cost nothing when disabled (the tracer's "two compares when off"
// discipline, extended to histograms and spans), and the enabled histogram
// path must stay allocation-free so serving seams can observe per-request.

func TestHistogramObserveNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	var h Histogram
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); allocs != 0 {
		t.Errorf("enabled Histogram.Observe allocates %.1f/op, want 0", allocs)
	}
	var nilH *Histogram
	if allocs := testing.AllocsPerRun(1000, func() { nilH.Observe(12345) }); allocs != 0 {
		t.Errorf("nil Histogram.Observe allocates %.1f/op, want 0", allocs)
	}
}

func TestSpanDisabledNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	ctx := context.Background()
	if allocs := testing.AllocsPerRun(1000, func() {
		_, end := StartSpan(ctx, "x")
		end()
	}); allocs != 0 {
		t.Errorf("scope-less StartSpan allocates %.1f/op, want 0", allocs)
	}
	start := time.Now()
	if allocs := testing.AllocsPerRun(1000, func() {
		CompleteSpan(ctx, "x", start)
	}); allocs != 0 {
		t.Errorf("scope-less CompleteSpan allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		WithTrace(ctx, "t", nil, nil)
	}); allocs != 0 {
		t.Errorf("sink-less WithTrace allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkHistogramObserve and BenchmarkStartSpanDisabled keep the
// overhead visible in `go test -bench` runs.
func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkStartSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, end := StartSpan(ctx, "x")
		end()
	}
}

func BenchmarkStartSpanEnabled(b *testing.B) {
	ctx := WithTrace(context.Background(), "t", nil, NewFlightRecorder(64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, end := StartSpan(ctx, "x")
		end()
	}
}
