// Package obs is the observability layer of the LVP pipeline: a lightweight
// metrics registry (registry.go) and a structured event-trace facility
// modelled on gem5's debug flags.
//
// Metrics are named counters, gauges and timers with atomic updates, safe
// under the internal/par worker pools, snapshotable to JSON and to an
// expvar-compatible map. Hot code resolves a metric handle once and then
// updates it lock-free; a nil *Registry hands out no-op handles so
// instrumentation costs nothing to leave in place.
//
// Event tracing is organised into named channels (lvpt, lct, cvu, cache,
// sim, pipeline, span), enabled as a bitmask. When a channel is off, the only cost
// at an emission site is a nil check and a mask test — the attributes are
// never materialised. When on, events are JSONL records written through
// log/slog, one line per event, safe for concurrent emitters.
package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Channel is a bitmask of trace channels. Emission sites tag each event with
// exactly one channel; the Tracer's mask selects which are live.
type Channel uint32

const (
	// ChanLVPT traces Load Value Prediction Table behaviour: one event per
	// dynamic load with PC, predicted vs actual value, and outcome.
	ChanLVPT Channel = 1 << iota
	// ChanLCT traces Load Classification Table counter transitions.
	ChanLCT
	// ChanCVU traces Constant Verification Unit hits, inserts and
	// invalidations.
	ChanCVU
	// ChanCache traces memory-hierarchy misses in the timing models.
	ChanCache
	// ChanSim traces machine-model incidents: value-misprediction
	// squashes, alias refetches, MSHR stalls.
	ChanSim
	// ChanPipeline traces experiment-engine phases: trace builds,
	// annotations, simulations, with wall times.
	ChanPipeline
	// ChanSpan traces request-scoped spans (span.go): one event per
	// completed span with trace/span/parent IDs, start offset and duration.
	ChanSpan

	// ChanNone is the empty mask.
	ChanNone Channel = 0
)

// ChanAll enables every channel.
const ChanAll = ChanLVPT | ChanLCT | ChanCVU | ChanCache | ChanSim | ChanPipeline | ChanSpan

// channelNames maps flag names to bits, in display order.
var channelNames = []struct {
	name string
	bit  Channel
}{
	{"lvpt", ChanLVPT},
	{"lct", ChanLCT},
	{"cvu", ChanCVU},
	{"cache", ChanCache},
	{"sim", ChanSim},
	{"pipeline", ChanPipeline},
	{"span", ChanSpan},
}

// String renders the mask as a comma-separated channel list.
func (c Channel) String() string {
	if c == 0 {
		return "none"
	}
	var parts []string
	for _, cn := range channelNames {
		if c&cn.bit != 0 {
			parts = append(parts, cn.name)
		}
	}
	if len(parts) == 0 {
		return fmt.Sprintf("Channel(%#x)", uint32(c))
	}
	return strings.Join(parts, ",")
}

// ParseChannels parses a comma-separated channel list ("lvpt,cvu"); "all"
// selects every channel, "" and "none" select none.
func ParseChannels(s string) (Channel, error) {
	var mask Channel
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		switch part {
		case "", "none":
			continue
		case "all":
			mask |= ChanAll
			continue
		}
		found := false
		for _, cn := range channelNames {
			if part == cn.name {
				mask |= cn.bit
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("obs: unknown trace channel %q (have %s)", part, ChanAll)
		}
	}
	return mask, nil
}

// Tracer emits structured events on enabled channels. A nil *Tracer is valid
// and permanently disabled, so instrumented code guards emission with a
// plain `if tr.Enabled(chan)` and pays two compares when tracing is off.
// The mask is fixed at construction; one Tracer may be shared by any number
// of goroutines (slog handlers serialize their writes).
type Tracer struct {
	mask Channel
	log  *slog.Logger
}

// NewTracer returns a tracer emitting JSONL events for the masked channels
// to w. A zero mask returns nil (fully disabled).
func NewTracer(w io.Writer, mask Channel) *Tracer {
	if mask == 0 {
		return nil
	}
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{
		// Level/time are noise for an event stream; keep records lean
		// and deterministic apart from the payload.
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) == 0 && (a.Key == slog.TimeKey || a.Key == slog.LevelKey) {
				return slog.Attr{}
			}
			return a
		},
	})
	return &Tracer{mask: mask, log: slog.New(h)}
}

// Enabled reports whether channel c is live on this tracer.
func (t *Tracer) Enabled(c Channel) bool {
	return t != nil && t.mask&c != 0
}

// Emit writes one event on channel c. Callers on hot paths should guard with
// Enabled first so attribute construction is skipped when the channel is off;
// Emit re-checks, so an unguarded call is merely slower, never wrong.
func (t *Tracer) Emit(c Channel, event string, attrs ...slog.Attr) {
	if !t.Enabled(c) {
		return
	}
	all := make([]slog.Attr, 0, len(attrs)+1)
	all = append(all, slog.String("chan", c.String()))
	all = append(all, attrs...)
	t.log.LogAttrs(context.Background(), slog.LevelInfo, event, all...)
}
