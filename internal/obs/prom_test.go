package obs

import (
	"bytes"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promMetric is one parsed exposition line: name{labels} value.
type promMetric struct {
	name   string
	labels map[string]string
	value  float64
}

// parseProm is a minimal exposition-format parser used to check our output
// the way a scraper would read it: TYPE lines per family, then samples. It
// fails the test on any line it cannot parse.
func parseProm(t *testing.T, text string) (types map[string]string, metrics []promMetric) {
	t.Helper()
	types = map[string]string{}
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line in exposition", ln)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln, line)
			}
			if _, dup := types[parts[2]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %q", ln, parts[2])
			}
			switch parts[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln, parts[3])
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comments are legal
		}
		m := promMetric{labels: map[string]string{}}
		rest := line
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			m.name = rest[:i]
			j := strings.LastIndexByte(rest, '}')
			if j < i {
				t.Fatalf("line %d: unterminated label block %q", ln, line)
			}
			parseLabels(t, ln, rest[i+1:j], m.labels)
			rest = strings.TrimSpace(rest[j+1:])
		} else {
			fields := strings.Fields(rest)
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed sample %q", ln, line)
			}
			m.name, rest = fields[0], fields[1]
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln, line, err)
		}
		m.value = v
		metrics = append(metrics, m)
	}
	return types, metrics
}

// parseLabels decodes a raw label block, undoing the escaping rules.
func parseLabels(t *testing.T, ln int, s string, into map[string]string) {
	t.Helper()
	i := 0
	for i < len(s) {
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			t.Fatalf("line %d: label block %q missing '='", ln, s)
		}
		key := s[i : i+eq]
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			t.Fatalf("line %d: label %q value not quoted", ln, key)
		}
		i++
		var val strings.Builder
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(s[i])
				default:
					t.Fatalf("line %d: bad escape \\%c", ln, s[i])
				}
			} else {
				val.WriteByte(s[i])
			}
			i++
		}
		if i >= len(s) {
			t.Fatalf("line %d: unterminated label value for %q", ln, key)
		}
		i++ // closing quote
		into[key] = val.String()
		if i < len(s) {
			if s[i] != ',' {
				t.Fatalf("line %d: expected ',' after label %q", ln, key)
			}
			i++
		}
	}
}

// baseFamily strips the per-sample suffixes so a sample can be matched to
// its TYPE-declared family.
func baseFamily(name string, types map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if typ := types[base]; typ == "histogram" || typ == "summary" {
				return base
			}
		}
	}
	return name
}

// TestPrometheusConformance renders a registry with every metric kind and
// re-parses the output, checking the invariants a real scraper relies on.
func TestPrometheusConformance(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.jobs.submitted").Add(7)
	r.Gauge("serve.queue.depth").Set(3)
	r.Timer("phase.trace").Observe(1500 * time.Nanosecond)
	h := r.Histogram("serve.job.wall_ns")
	for _, v := range []int64{100, 1000, 1000, 50000} {
		h.Observe(v)
	}
	r.Histogram(LabeledName("http.request.duration_ns",
		"route", "POST /v1/jobs", "status", "202")).Observe(250)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, "lvp"); err != nil {
		t.Fatal(err)
	}
	types, metrics := parseProm(t, buf.String())

	// Every sample's family must have a TYPE declaration.
	for _, m := range metrics {
		if _, ok := types[baseFamily(m.name, types)]; !ok {
			t.Errorf("sample %q has no TYPE declaration", m.name)
		}
	}

	find := func(name string, want map[string]string) *promMetric {
		for i := range metrics {
			if metrics[i].name != name {
				continue
			}
			match := true
			for k, v := range want {
				if metrics[i].labels[k] != v {
					match = false
					break
				}
			}
			if match {
				return &metrics[i]
			}
		}
		return nil
	}

	if m := find("lvp_serve_jobs_submitted_total", nil); m == nil || m.value != 7 {
		t.Errorf("counter sample wrong: %+v", m)
	}
	if types["lvp_serve_jobs_submitted_total"] != "counter" {
		t.Error("counter family not typed counter")
	}
	if m := find("lvp_serve_queue_depth", nil); m == nil || m.value != 3 {
		t.Errorf("gauge sample wrong: %+v", m)
	}
	if m := find("lvp_phase_trace_ns_sum", nil); m == nil || m.value != 1500 {
		t.Errorf("timer _sum wrong: %+v", m)
	}
	if types["lvp_phase_trace_ns"] != "summary" {
		t.Error("timer family not typed summary")
	}

	// Histogram: buckets must be cumulative, in ascending le order, ending
	// at le="+Inf" equal to _count; _sum equals the observed total.
	if types["lvp_serve_job_wall_ns"] != "histogram" {
		t.Fatal("histogram family not typed histogram")
	}
	var buckets []promMetric
	for _, m := range metrics {
		if m.name == "lvp_serve_job_wall_ns_bucket" {
			buckets = append(buckets, m)
		}
	}
	if len(buckets) < 2 {
		t.Fatalf("got %d histogram buckets, want >= 2", len(buckets))
	}
	le := func(m promMetric) float64 {
		s := m.labels["le"]
		if s == "+Inf" {
			return float64(1 << 62)
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bucket has bad le %q", s)
		}
		return v
	}
	if !sort.SliceIsSorted(buckets, func(a, b int) bool { return le(buckets[a]) < le(buckets[b]) }) {
		t.Error("histogram buckets not in ascending le order")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i].value < buckets[i-1].value {
			t.Errorf("bucket counts not cumulative: le=%s count %v < le=%s count %v",
				buckets[i].labels["le"], buckets[i].value,
				buckets[i-1].labels["le"], buckets[i-1].value)
		}
	}
	last := buckets[len(buckets)-1]
	if last.labels["le"] != "+Inf" {
		t.Errorf("last bucket le = %q, want +Inf", last.labels["le"])
	}
	count := find("lvp_serve_job_wall_ns_count", nil)
	if count == nil || count.value != 4 || last.value != count.value {
		t.Errorf("+Inf bucket %v != _count %+v (want 4)", last.value, count)
	}
	if sum := find("lvp_serve_job_wall_ns_sum", nil); sum == nil || sum.value != 52100 {
		t.Errorf("histogram _sum wrong: %+v", sum)
	}

	// Labeled histogram: route/status labels survive the round trip.
	lb := find("lvp_http_request_duration_ns_count",
		map[string]string{"route": "POST /v1/jobs", "status": "202"})
	if lb == nil || lb.value != 1 {
		t.Errorf("labeled histogram _count wrong: %+v", lb)
	}
}

// TestPrometheusLabelEscaping round-trips label values containing every
// escaped character through the renderer and the parser.
func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	hostile := `quote " backslash \ newline` + "\n" + `end`
	r.Counter(LabeledName("weird.metric", "v", hostile)).Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, "lvp"); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "\n") != 2 {
		t.Errorf("raw newline leaked into exposition:\n%s", buf.String())
	}
	_, metrics := parseProm(t, buf.String())
	if len(metrics) != 1 {
		t.Fatalf("got %d samples, want 1", len(metrics))
	}
	if got := metrics[0].labels["v"]; got != hostile {
		t.Errorf("label value round trip: got %q, want %q", got, hostile)
	}
}

// TestPrometheusDeterminism checks two renders of the same registry are
// byte-identical (families and labels sort).
func TestPrometheusDeterminism(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"z.last", "a.first", "m.middle"} {
		r.Counter(n).Inc()
		r.Histogram(n + "_ns").Observe(42)
	}
	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a, "lvp"); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b, "lvp"); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two renders of one registry differ")
	}
}

// TestPrometheusEmptyRegistry checks the degenerate cases render cleanly.
func TestPrometheusEmptyRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRegistry().WritePrometheus(&buf, "lvp"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty registry rendered %q", buf.String())
	}
	// A histogram with zero observations still renders a consistent family.
	r := NewRegistry()
	r.Histogram("empty_ns")
	buf.Reset()
	if err := r.WritePrometheus(&buf, "lvp"); err != nil {
		t.Fatal(err)
	}
	_, metrics := parseProm(t, buf.String())
	for _, m := range metrics {
		if m.value != 0 {
			t.Errorf("empty histogram sample %q = %v, want 0", m.name, m.value)
		}
	}
}
