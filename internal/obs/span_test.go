package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanChannelGoldenSchema pins the JSONL schema of the span channel: one
// "span" event per completed span with exactly the trace/span/parent/name/
// timing keys (plus chan/msg and user attrs), no time/level noise.
func TestSpanChannelGoldenSchema(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, ChanSpan)
	ctx := WithTrace(context.Background(), "trace-1", tr, nil)

	jctx, endJob := StartSpan(ctx, "job", slog.String("id", "job-000001"))
	_, endCell := StartSpan(jctx, "cell", slog.Int("index", 0))
	endCell()
	endJob()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	// Spans complete inner-first: the cell line precedes the job line.
	var cell, job map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &cell); err != nil {
		t.Fatalf("cell line not valid JSON: %v", err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &job); err != nil {
		t.Fatalf("job line not valid JSON: %v", err)
	}

	wantKeys := []string{"msg", "chan", "trace", "span", "parent", "name", "start_us", "dur_us"}
	for _, k := range wantKeys {
		if _, ok := cell[k]; !ok {
			t.Errorf("cell event missing key %q: %v", k, cell)
		}
	}
	for _, k := range []string{"time", "level"} {
		if _, ok := cell[k]; ok {
			t.Errorf("span event carries %q; records should be lean", k)
		}
	}
	if cell["msg"] != "span" || cell["chan"] != "span" {
		t.Errorf("cell event not on the span channel: %v", cell)
	}
	if cell["trace"] != "trace-1" || job["trace"] != "trace-1" {
		t.Errorf("trace IDs wrong: cell %v job %v", cell["trace"], job["trace"])
	}
	if cell["name"] != "cell" || job["name"] != "job" {
		t.Errorf("span names wrong: cell %v job %v", cell["name"], job["name"])
	}
	if cell["index"] != float64(0) || job["id"] != "job-000001" {
		t.Errorf("user attrs lost: cell %v job %v", cell, job)
	}
	// Parenting: job is the root (parent 0), cell is its child.
	if job["parent"] != float64(0) {
		t.Errorf("job parent = %v, want 0", job["parent"])
	}
	if cell["parent"] != job["span"] {
		t.Errorf("cell parent = %v, want job span %v", cell["parent"], job["span"])
	}
	if cell["span"] == job["span"] {
		t.Errorf("cell and job share span ID %v", cell["span"])
	}
}

// TestCompleteSpan checks the one-shot form parents correctly and reports
// the given start.
func TestCompleteSpan(t *testing.T) {
	rec := NewFlightRecorder(8)
	ctx := WithTrace(context.Background(), "t", nil, rec)
	jctx, endJob := StartSpan(ctx, "job")
	start := time.Now().Add(-time.Second)
	CompleteSpan(jctx, "queue-wait", start)
	endJob()

	spans, dropped := rec.Snapshot()
	if dropped != 0 || len(spans) != 2 {
		t.Fatalf("got %d spans (dropped %d), want 2 (0)", len(spans), dropped)
	}
	qw, job := spans[0], spans[1]
	if qw.Name != "queue-wait" || job.Name != "job" {
		t.Fatalf("span order wrong: %q, %q", qw.Name, job.Name)
	}
	if qw.Parent != job.ID {
		t.Errorf("queue-wait parent = %d, want job span %d", qw.Parent, job.ID)
	}
	if !qw.Start.Equal(start) {
		t.Errorf("queue-wait start = %v, want %v", qw.Start, start)
	}
	if qw.Duration < time.Second {
		t.Errorf("queue-wait duration = %v, want >= 1s", qw.Duration)
	}
}

func TestFlightRecorderRing(t *testing.T) {
	rec := NewFlightRecorder(4)
	for i := 1; i <= 10; i++ {
		rec.Record(Span{ID: uint64(i)})
	}
	spans, dropped := rec.Snapshot()
	if dropped != 6 {
		t.Errorf("dropped = %d, want 6", dropped)
	}
	if len(spans) != 4 {
		t.Fatalf("kept %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if want := uint64(7 + i); s.ID != want {
			t.Errorf("spans[%d].ID = %d, want %d (oldest-first recording order)", i, s.ID, want)
		}
	}

	if def := NewFlightRecorder(0); def.cap != DefaultFlightSpans {
		t.Errorf("zero capacity selected %d, want DefaultFlightSpans", def.cap)
	}
	var nilRec *FlightRecorder
	nilRec.Record(Span{})
	if s, d := nilRec.Snapshot(); s != nil || d != 0 {
		t.Error("nil recorder not a no-op")
	}
}

// TestSpanDisabledPaths checks the off path: no scope installed when both
// sinks are absent, and span calls without a scope do nothing.
func TestSpanDisabledPaths(t *testing.T) {
	ctx := context.Background()
	if got := WithTrace(ctx, "t", nil, nil); got != ctx {
		t.Error("WithTrace with no sinks should return ctx unchanged")
	}
	var buf bytes.Buffer
	tr := NewTracer(&buf, ChanLVPT) // span channel off
	if got := WithTrace(ctx, "t", tr, nil); got != ctx {
		t.Error("WithTrace with span channel off should return ctx unchanged")
	}
	if SpanEnabled(ctx) {
		t.Error("SpanEnabled true without a scope")
	}
	if TraceID(ctx) != "" {
		t.Error("TraceID non-empty without a scope")
	}
	sctx, end := StartSpan(ctx, "x")
	if sctx != ctx {
		t.Error("StartSpan without scope should return ctx unchanged")
	}
	end()
	CompleteSpan(ctx, "x", time.Now())
	if buf.Len() != 0 {
		t.Errorf("disabled span path emitted %d bytes", buf.Len())
	}

	// With a scope, but the tracer channel off and a recorder present: the
	// recorder still gets spans, the tracer stays silent.
	rec := NewFlightRecorder(4)
	rctx := WithTrace(ctx, "t", tr, rec)
	if !SpanEnabled(rctx) {
		t.Error("SpanEnabled false with a recorder installed")
	}
	if TraceID(rctx) != "t" {
		t.Errorf("TraceID = %q, want t", TraceID(rctx))
	}
	_, end = StartSpan(rctx, "x")
	end()
	if spans, _ := rec.Snapshot(); len(spans) != 1 {
		t.Errorf("recorder got %d spans, want 1", len(spans))
	}
	if buf.Len() != 0 {
		t.Errorf("tracer with span channel off emitted %d bytes", buf.Len())
	}
}

// TestSpanConcurrent races span creation across goroutines sharing one
// scope and checks every span ID is unique (run under -race via check-obs).
func TestSpanConcurrent(t *testing.T) {
	rec := NewFlightRecorder(64 * 50 * 2)
	ctx := WithTrace(context.Background(), "t", nil, rec)
	var wg sync.WaitGroup
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				cctx, end := StartSpan(ctx, "outer", slog.Int("g", g))
				CompleteSpan(cctx, "inner", time.Now())
				end()
			}
		}(g)
	}
	wg.Wait()
	spans, dropped := rec.Snapshot()
	if dropped != 0 || len(spans) != 64*50*2 {
		t.Fatalf("got %d spans (dropped %d), want %d", len(spans), dropped, 64*50*2)
	}
	seen := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Errorf("two trace IDs collide: %q", a)
	}
	if len(a) != 16 {
		t.Errorf("trace ID %q has length %d, want 16", a, len(a))
	}
	for _, r := range a {
		if !strings.ContainsRune("0123456789abcdef", r) {
			t.Errorf("trace ID %q not lowercase hex", a)
		}
	}
}

// TestSpanIdentityDiscipline spot-checks that span instrumentation cannot
// perturb results: the same computation run with and without a scope sees
// identical context values other than the scope key itself.
func TestSpanIdentityDiscipline(t *testing.T) {
	type userKey struct{}
	base := context.WithValue(context.Background(), userKey{}, 42)
	traced := WithTrace(base, "t", nil, NewFlightRecorder(4))
	sctx, end := StartSpan(traced, "x")
	defer end()
	if v, _ := sctx.Value(userKey{}).(int); v != 42 {
		t.Errorf("user context value lost under span scope: %v", v)
	}
}
