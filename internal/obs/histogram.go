package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a lock-light log-bucketed distribution of int64 samples
// (latencies in nanoseconds by convention — name histograms with an `_ns`
// suffix). Observations land in geometric buckets with histSub sub-buckets
// per power of two, so the relative quantile error is bounded by
// 1/(2·histSub) (12.5%) while Observe stays three atomic operations: one
// bucket increment, one sum add, one max CAS. Histograms from different
// processes with the same layout merge by bucket addition (Merge), which is
// what lets a future coordinator aggregate per-worker latency distributions
// without losing the tail.
//
// A nil *Histogram is a no-op, like every other registry handle.
type Histogram struct {
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

const (
	histSubBits = 2
	// histSub is the sub-bucket resolution per power of two.
	histSub = 1 << histSubBits
	// histBuckets covers every non-negative int64: values below histSub get
	// exact buckets, larger values index by (octave, sub-bucket).
	histBuckets = (63-histSubBits)*histSub + histSub
)

// bucketIndex maps a sample to its bucket. Values 0..histSub-1 are exact;
// larger values take the top histSubBits bits after the leading one as the
// sub-bucket within their octave.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < histSub {
		return int(u)
	}
	e := bits.Len64(u) - 1
	sub := int((u >> (uint(e) - histSubBits)) & (histSub - 1))
	return (e-histSubBits)*histSub + sub + histSub
}

// bucketBound returns the largest sample value bucket i holds (the
// Prometheus `le` upper bound of that bucket).
func bucketBound(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	i -= histSub
	e := uint(i/histSub) + histSubBits
	sub := int64(i % histSub)
	lower := int64(1)<<e + sub<<(e-histSubBits)
	return lower + int64(1)<<(e-histSubBits) - 1
}

// Observe records one sample. Negative samples clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Start begins timing and returns a stop function recording the elapsed
// nanoseconds: defer h.Start()().
func (h *Histogram) Start() func() {
	if h == nil {
		return func() {}
	}
	start := time.Now()
	return func() { h.Observe(int64(time.Since(start))) }
}

// Merge adds o's samples into h (bucket-wise, so quantiles of the merged
// histogram are exactly the quantiles of the combined sample set at this
// layout's resolution). A nil receiver or argument is a no-op.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.sum.Add(o.sum.Load())
	for {
		m, om := h.max.Load(), o.max.Load()
		if om <= m || h.max.CompareAndSwap(m, om) {
			return
		}
	}
}

// HistogramBucket is one non-empty bucket of a snapshot: Count samples were
// <= LE and greater than the previous bucket's LE.
type HistogramBucket struct {
	LE    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a histogram's frozen state. Count is the bucket
// total (so cumulative-bucket renderings always sum exactly); quantiles are
// upper-bound estimates at the bucket resolution, deterministic for a given
// set of bucket counts.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Max     int64             `json:"max"`
	P50     int64             `json:"p50"`
	P90     int64             `json:"p90"`
	P99     int64             `json:"p99"`
	P999    int64             `json:"p999"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot freezes the histogram. Concurrent observers may land between the
// bucket loads; every sample that completed Observe before the call is
// included.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	counts := make([]int64, 0, 16)
	bounds := make([]int64, 0, 16)
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			counts = append(counts, n)
			bounds = append(bounds, bucketBound(i))
			s.Count += n
		}
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	if s.Count == 0 {
		return s
	}
	quantile := func(q float64) int64 {
		rank := int64(math.Ceil(q * float64(s.Count)))
		if rank < 1 {
			rank = 1
		}
		var cum int64
		for i, n := range counts {
			cum += n
			if cum >= rank {
				return bounds[i]
			}
		}
		return bounds[len(bounds)-1]
	}
	s.P50 = quantile(0.50)
	s.P90 = quantile(0.90)
	s.P99 = quantile(0.99)
	s.P999 = quantile(0.999)
	s.Buckets = make([]HistogramBucket, len(counts))
	for i := range counts {
		s.Buckets[i] = HistogramBucket{LE: bounds[i], Count: counts[i]}
	}
	return s
}
