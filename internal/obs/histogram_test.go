package obs

import (
	"sync"
	"testing"
)

// TestBucketBoundsMonotone checks the bucket layout is a proper partition:
// bounds strictly increase, and every bound maps back into its own bucket.
func TestBucketBoundsMonotone(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		b := bucketBound(i)
		if b <= prev {
			t.Fatalf("bucketBound(%d) = %d, not above bucketBound(%d) = %d", i, b, i-1, prev)
		}
		if got := bucketIndex(b); got != i {
			t.Fatalf("bucketIndex(bucketBound(%d)=%d) = %d, want %d", i, b, got, i)
		}
		// The next representable value belongs to the next bucket.
		if i+1 < histBuckets {
			if got := bucketIndex(b + 1); got != i+1 {
				t.Fatalf("bucketIndex(%d) = %d, want %d", b+1, got, i+1)
			}
		}
		prev = b
	}
}

// TestBucketIndexKnownValues pins the layout: exact buckets below histSub,
// then histSub sub-buckets per octave.
func TestBucketIndexKnownValues(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 3},
		{4, 4}, {5, 5}, {6, 6}, {7, 7},
		{8, 8}, {9, 8}, {10, 9}, {15, 11},
		{16, 12}, {100, 22}, {1 << 62, 244},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestHistogramQuantileError checks the structural guarantee: for any
// sample, the reported bucket bound is within 1/histSub relative error of
// the true value (12.5% at histSubBits=2).
func TestHistogramQuantileError(t *testing.T) {
	for _, v := range []int64{1, 7, 100, 999, 12345, 1 << 20, 987654321} {
		b := bucketBound(bucketIndex(v))
		if b < v {
			t.Fatalf("bound %d below sample %d", b, v)
		}
		if float64(b-v) > float64(v)/float64(histSub)+1 {
			t.Errorf("sample %d: bound %d overshoots by more than 1/%d", v, b, histSub)
		}
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Errorf("Count = %d, want 1000", s.Count)
	}
	if s.Sum != 500500 {
		t.Errorf("Sum = %d, want 500500", s.Sum)
	}
	if s.Max != 1000 {
		t.Errorf("Max = %d, want 1000", s.Max)
	}
	// Quantiles are upper-bound estimates: at or above the true quantile,
	// within one bucket width (12.5%).
	checks := []struct {
		name      string
		got, true int64
	}{
		{"p50", s.P50, 500}, {"p90", s.P90, 900}, {"p99", s.P99, 990}, {"p999", s.P999, 999},
	}
	for _, c := range checks {
		if c.got < c.true {
			t.Errorf("%s = %d, below true quantile %d", c.name, c.got, c.true)
		}
		if float64(c.got) > float64(c.true)*1.25 {
			t.Errorf("%s = %d, more than 25%% above true quantile %d", c.name, c.got, c.true)
		}
	}
	// Bucket counts must add up to Count (the Prometheus +Inf invariant).
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != s.Count {
		t.Errorf("bucket total %d != Count %d", total, s.Count)
	}
}

func TestHistogramNegativeClamp(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 0 || len(s.Buckets) != 1 || s.Buckets[0].LE != 0 {
		t.Errorf("negative observation not clamped to zero: %+v", s)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Observe(10)
		b.Observe(1000)
	}
	b.Observe(5000)
	a.Merge(&b)
	s := a.Snapshot()
	if s.Count != 201 {
		t.Errorf("merged Count = %d, want 201", s.Count)
	}
	if want := int64(100*10 + 100*1000 + 5000); s.Sum != want {
		t.Errorf("merged Sum = %d, want %d", s.Sum, want)
	}
	if s.Max != 5000 {
		t.Errorf("merged Max = %d, want 5000", s.Max)
	}
	// Merging must be bucket-exact: the merged snapshot equals observing
	// the combined sample set directly.
	var c Histogram
	for i := 0; i < 100; i++ {
		c.Observe(10)
		c.Observe(1000)
	}
	c.Observe(5000)
	cs := c.Snapshot()
	if len(cs.Buckets) != len(s.Buckets) {
		t.Fatalf("merged buckets %v != direct buckets %v", s.Buckets, cs.Buckets)
	}
	for i := range cs.Buckets {
		if cs.Buckets[i] != s.Buckets[i] {
			t.Errorf("bucket %d: merged %+v != direct %+v", i, s.Buckets[i], cs.Buckets[i])
		}
	}
}

// TestNilHistogram checks the nil handle is a full no-op, like every other
// registry handle.
func TestNilHistogram(t *testing.T) {
	var h *Histogram
	h.Observe(5)
	h.Merge(nil)
	h.Start()()
	s := h.Snapshot()
	if s.Count != 0 || len(s.Buckets) != 0 {
		t.Errorf("nil histogram snapshot not empty: %+v", s)
	}
	var r *Registry
	if r.Histogram("x") != nil {
		t.Error("nil registry returned non-nil histogram")
	}
}

// TestHistogramConcurrent hammers one histogram from 64 goroutines and
// checks no sample is lost (run under -race via make check-obs).
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const goroutines, perG = 64, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(int64(g*perG + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Errorf("Count = %d, want %d", s.Count, goroutines*perG)
	}
	if want := int64(goroutines*perG) * int64(goroutines*perG-1) / 2; s.Sum != want {
		t.Errorf("Sum = %d, want %d", s.Sum, want)
	}
	if want := int64(goroutines*perG - 1); s.Max != want {
		t.Errorf("Max = %d, want %d", s.Max, want)
	}
}
