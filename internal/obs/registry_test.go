package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentMetrics hammers one counter, gauge and timer from 64
// goroutines (the satellite's -race gate) and checks the merged totals.
func TestConcurrentMetrics(t *testing.T) {
	const goroutines = 64
	const perG = 1000

	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			ga := r.Gauge("g")
			tm := r.Timer("t")
			for i := 0; i < perG; i++ {
				c.Inc()
				ga.Acquire()
				tm.Observe(time.Microsecond)
				ga.Release()
			}
		}()
	}
	wg.Wait()

	if got := r.Counter("c").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("g").Value(); got != 0 {
		t.Errorf("gauge value = %d, want 0 (all released)", got)
	}
	if hi := r.Gauge("g").Max(); hi < 1 || hi > goroutines {
		t.Errorf("gauge high-water = %d, want in [1,%d]", hi, goroutines)
	}
	if got := r.Timer("t").Count(); got != goroutines*perG {
		t.Errorf("timer count = %d, want %d", got, goroutines*perG)
	}
	if got := r.Timer("t").Total(); got != goroutines*perG*time.Microsecond {
		t.Errorf("timer total = %v, want %v", got, goroutines*perG*time.Microsecond)
	}
}

// TestConcurrentRegistryResolve races get-or-create for the same names and
// checks every goroutine got the same handle (no lost updates).
func TestConcurrentRegistryResolve(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Counter("shared").Inc()
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 64 {
		t.Errorf("shared counter = %d, want 64", got)
	}
}

func TestGaugeSetRaisesMax(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.Set(2)
	if g.Value() != 2 || g.Max() != 5 {
		t.Errorf("got value=%d max=%d, want 2/5", g.Value(), g.Max())
	}
}

// TestSnapshotDeterminism builds the same registry twice and requires
// byte-identical JSON.
func TestSnapshotDeterminism(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		for _, name := range []string{"z.last", "a.first", "m.middle"} {
			r.Counter(name).Add(7)
			r.Gauge("g." + name).Set(3)
			r.Timer("t." + name).Observe(5 * time.Millisecond)
		}
		return r
	}
	var w1, w2 strings.Builder
	if err := build().WriteJSON(&w1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&w2); err != nil {
		t.Fatal(err)
	}
	if w1.String() != w2.String() {
		t.Errorf("snapshots differ:\n%s\nvs\n%s", w1.String(), w2.String())
	}
}

// TestSnapshotGoldenSchema pins the exact JSON metrics schema: key order
// (sorted), field names, and nanosecond timer fields. Consumers parsing
// `lvpsim -metrics` output rely on this shape.
func TestSnapshotGoldenSchema(t *testing.T) {
	r := NewRegistry()
	r.Counter("lvpt.hits").Add(42)
	r.Counter("cvu.hits").Add(7)
	r.Gauge("pool.busy").Set(3)
	r.Gauge("pool.busy").Set(1)
	tm := r.Timer("phase.trace")
	tm.Observe(2 * time.Millisecond)
	tm.Observe(4 * time.Millisecond)
	h := r.Histogram("serve.job.wall_ns")
	h.Observe(2)
	h.Observe(3)
	h.Observe(100)

	const want = `{
  "counters": {
    "cvu.hits": 7,
    "lvpt.hits": 42
  },
  "gauges": {
    "pool.busy": {
      "value": 1,
      "max": 3
    }
  },
  "timers": {
    "phase.trace": {
      "count": 2,
      "total_ns": 6000000,
      "min_ns": 2000000,
      "max_ns": 4000000,
      "avg_ns": 3000000
    }
  },
  "histograms": {
    "serve.job.wall_ns": {
      "count": 3,
      "sum": 105,
      "max": 100,
      "p50": 3,
      "p90": 111,
      "p99": 111,
      "p999": 111,
      "buckets": [
        {
          "le": 2,
          "count": 1
        },
        {
          "le": 3,
          "count": 1
        },
        {
          "le": 111,
          "count": 1
        }
      ]
    }
  }
}
`
	var w strings.Builder
	if err := r.WriteJSON(&w); err != nil {
		t.Fatal(err)
	}
	if w.String() != want {
		t.Errorf("golden mismatch:\ngot:\n%s\nwant:\n%s", w.String(), want)
	}
}

// TestNilRegistry checks that a nil registry and its nil handles are fully
// usable no-ops, so instrumented code needs no guards.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Acquire()
	r.Gauge("y").Release()
	r.Timer("z").Observe(time.Second)
	r.Timer("z").Start()()
	if v := r.Counter("x").Value(); v != 0 {
		t.Errorf("nil counter value = %d", v)
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Timers) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
	var w strings.Builder
	if err := r.WriteJSON(&w); err != nil {
		t.Fatal(err)
	}
	r.Publish("nil-registry") // must not panic or publish
}

// TestPublishDuplicate re-publishes the same expvar name sequentially;
// expvar.Publish would panic, Registry.Publish must no-op (first wins).
func TestPublishDuplicate(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Publish("obs-test-dup")
	b.Publish("obs-test-dup") // must not panic
	a.Publish("obs-test-dup") // nor on a repeat from the same registry
}

// TestConcurrentPublish races many registries publishing one name: the
// get-then-publish window must be closed (run under -race via check-obs).
func TestConcurrentPublish(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			NewRegistry().Publish("obs-test-concurrent-dup")
		}()
	}
	wg.Wait()
}
