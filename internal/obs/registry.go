package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use; Add is a single atomic instruction, so counters can sit on
// hot paths shared by the internal/par worker pools.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time value that also tracks its high-water mark.
// Acquire/Release make it usable directly as a worker-pool occupancy meter
// (it satisfies par.Meter).
type Gauge struct {
	v  atomic.Int64
	hi atomic.Int64
}

// Set replaces the gauge value, raising the high-water mark if needed.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
	g.raise(n)
}

// Add moves the gauge by delta (negative to decrease), raising the
// high-water mark if the new value exceeds it.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.raise(g.v.Add(delta))
}

func (g *Gauge) raise(n int64) {
	for {
		hi := g.hi.Load()
		if n <= hi || g.hi.CompareAndSwap(hi, n) {
			return
		}
	}
}

// Acquire marks one unit busy (gauge +1).
func (g *Gauge) Acquire() { g.Add(1) }

// Release marks one unit idle (gauge -1).
func (g *Gauge) Release() { g.Add(-1) }

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.hi.Load()
}

// Timer accumulates durations: count, total, min and max. Observations are
// mutex-guarded; timers are meant for per-phase / per-cell granularity (a
// handful of observations per experiment cell), not per-instruction paths.
type Timer struct {
	mu    sync.Mutex
	count int64
	total time.Duration
	min   time.Duration
	max   time.Duration
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.count++
	t.total += d
	if t.count == 1 || d < t.min {
		t.min = d
	}
	if d > t.max {
		t.max = d
	}
	t.mu.Unlock()
}

// Start begins timing and returns a stop function that records the elapsed
// duration: defer tm.Start()().
func (t *Timer) Start() func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// Count returns the number of observations.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Registry is a named collection of counters, gauges and timers. Metric
// handles are get-or-create by name: resolve once, then update through the
// returned pointer with no further locking or allocation. A nil *Registry is
// valid: it hands out nil metric handles whose methods are no-ops, so
// instrumented code never needs a nil check of its own.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		timers:   map[string]*Timer{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	t := r.timers[name]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.timers[name]; t == nil {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// GaugeSnapshot is one gauge's frozen state.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// TimerSnapshot is one timer's frozen state, in nanoseconds.
type TimerSnapshot struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
	MinNS   int64 `json:"min_ns"`
	MaxNS   int64 `json:"max_ns"`
	AvgNS   int64 `json:"avg_ns"`
}

// Snapshot is a frozen copy of every metric in a registry. encoding/json
// renders map keys sorted, so the serialized form is deterministic for a
// given set of metric values.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges"`
	Timers     map[string]TimerSnapshot     `json:"timers"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]GaugeSnapshot{},
		Timers:     map[string]TimerSnapshot{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeSnapshot{Value: g.Value(), Max: g.Max()}
	}
	for name, t := range r.timers {
		t.mu.Lock()
		ts := TimerSnapshot{
			Count:   t.count,
			TotalNS: t.total.Nanoseconds(),
			MinNS:   t.min.Nanoseconds(),
			MaxNS:   t.max.Nanoseconds(),
		}
		if t.count > 0 {
			ts.AvgNS = ts.TotalNS / t.count
		}
		t.mu.Unlock()
		s.Timers[name] = ts
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON writes an indented JSON snapshot of the registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// publishMu serializes Publish calls: expvar.Publish panics on a duplicate
// name, and the get-then-publish pair is not atomic on its own, so two
// concurrent registries publishing the same name could both pass the Get
// check. The mutex makes duplicate registration — sequential or concurrent,
// from tests or embedded users constructing many registries — a plain no-op
// (first publisher wins).
var publishMu sync.Mutex

// Publish registers the registry under name in the process-wide expvar map
// (served at /debug/vars by the pprof endpoint). Publishing the same name
// twice is a no-op rather than the expvar.Publish panic, so repeated runs in
// one process are safe.
func (r *Registry) Publish(name string) {
	if r == nil {
		return
	}
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
