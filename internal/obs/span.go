package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// Request-scoped span tracing. A trace is one request's tree of timed spans
// (job → cells → pipeline phases), identified by a trace ID that the daemon
// echoes as X-Request-Id. The scope travels by context.Context: WithTrace
// installs it, StartSpan opens a child span, CompleteSpan records an
// already-timed one. Completed spans go to two sinks — the JSONL Tracer's
// `span` channel, and a bounded per-request FlightRecorder that backs the
// timeline endpoint — either of which may be absent.
//
// The off path keeps the tracer discipline: a context without a scope makes
// StartSpan/CompleteSpan a value lookup and a nil compare, no allocation,
// and WithTrace with both sinks disabled returns ctx unchanged so the whole
// request never carries a scope.

// Span is one completed span of a trace. IDs are unique within the trace;
// Parent is 0 for the root span.
type Span struct {
	Trace    string
	ID       uint64
	Parent   uint64
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []slog.Attr
}

// DefaultFlightSpans is the FlightRecorder capacity when none is given.
const DefaultFlightSpans = 256

// FlightRecorder keeps the last N completed spans of one request in a ring
// buffer, so a finished (or stuck) job can be post-mortemed without tracing
// having been enabled up front. Recording is mutex-guarded and span-grained
// (never per-record), so contention is negligible.
type FlightRecorder struct {
	mu      sync.Mutex
	cap     int
	spans   []Span
	next    int
	full    bool
	dropped int64
}

// NewFlightRecorder returns a recorder keeping the last `capacity` spans
// (<= 0 selects DefaultFlightSpans).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightSpans
	}
	return &FlightRecorder{cap: capacity}
}

// Record stores one completed span, evicting the oldest when full. A nil
// recorder is a no-op.
func (r *FlightRecorder) Record(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.spans) < r.cap {
		r.spans = append(r.spans, s)
	} else {
		r.spans[r.next] = s
		r.next = (r.next + 1) % r.cap
		r.full = true
		r.dropped++
	}
	r.mu.Unlock()
}

// Snapshot returns the recorded spans in recording order, plus how many
// older spans the ring has evicted.
func (r *FlightRecorder) Snapshot() (spans []Span, dropped int64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.spans))
	if r.full {
		out = append(out, r.spans[r.next:]...)
		out = append(out, r.spans[:r.next:r.next]...)
	} else {
		out = append(out, r.spans...)
	}
	return out, r.dropped
}

// spanScope is the context-carried tracing state: the trace identity, both
// sinks, the shared span-ID allocator, and the currently open span (the
// parent for anything started under this context).
type spanScope struct {
	trace  string
	tracer *Tracer
	rec    *FlightRecorder
	seq    *atomic.Uint64
	epoch  time.Time
	span   uint64
}

type scopeKey struct{}

// WithTrace installs a span scope on ctx: spans opened under it emit to the
// tracer's span channel and/or the recorder. When the span channel is off
// and rec is nil, ctx is returned unchanged — the request carries no scope
// and every span call under it is a no-op.
func WithTrace(ctx context.Context, traceID string, tr *Tracer, rec *FlightRecorder) context.Context {
	if rec == nil && !tr.Enabled(ChanSpan) {
		return ctx
	}
	return context.WithValue(ctx, scopeKey{}, &spanScope{
		trace:  traceID,
		tracer: tr,
		rec:    rec,
		seq:    new(atomic.Uint64),
		epoch:  time.Now(),
	})
}

// SpanEnabled reports whether ctx carries a live span scope. Callers that
// build attributes for a span should guard with it, exactly like
// Tracer.Enabled guards event attributes.
func SpanEnabled(ctx context.Context) bool {
	sc, _ := ctx.Value(scopeKey{}).(*spanScope)
	return sc != nil
}

// TraceID returns ctx's trace ID, or "" without a scope.
func TraceID(ctx context.Context) string {
	if sc, _ := ctx.Value(scopeKey{}).(*spanScope); sc != nil {
		return sc.trace
	}
	return ""
}

func nopEnd() {}

// StartSpan opens a span under ctx's scope and returns a context carrying
// it (children started from that context parent here) plus the function
// that completes it. Without a scope it returns ctx unchanged and a shared
// no-op: zero allocations, so instrumentation can stay in place.
func StartSpan(ctx context.Context, name string, attrs ...slog.Attr) (context.Context, func()) {
	sc, _ := ctx.Value(scopeKey{}).(*spanScope)
	if sc == nil {
		return ctx, nopEnd
	}
	child := &spanScope{
		trace:  sc.trace,
		tracer: sc.tracer,
		rec:    sc.rec,
		seq:    sc.seq,
		epoch:  sc.epoch,
		span:   sc.seq.Add(1),
	}
	parent := sc.span
	start := time.Now()
	return context.WithValue(ctx, scopeKey{}, child), func() {
		child.emit(name, child.span, parent, start, time.Since(start), attrs)
	}
}

// CompleteSpan records a span that ran from start until now as a child of
// ctx's current span — the one-shot form for phases that are already timed.
// Without a scope it is a value lookup and a nil compare.
func CompleteSpan(ctx context.Context, name string, start time.Time, attrs ...slog.Attr) {
	sc, _ := ctx.Value(scopeKey{}).(*spanScope)
	if sc == nil {
		return
	}
	sc.emit(name, sc.seq.Add(1), sc.span, start, time.Since(start), attrs)
}

// emit delivers one completed span to both sinks.
func (sc *spanScope) emit(name string, id, parent uint64, start time.Time, d time.Duration, attrs []slog.Attr) {
	sc.rec.Record(Span{
		Trace: sc.trace, ID: id, Parent: parent, Name: name,
		Start: start, Duration: d, Attrs: attrs,
	})
	if sc.tracer.Enabled(ChanSpan) {
		ev := make([]slog.Attr, 0, len(attrs)+6)
		ev = append(ev,
			slog.String("trace", sc.trace),
			slog.Uint64("span", id),
			slog.Uint64("parent", parent),
			slog.String("name", name),
			slog.Int64("start_us", start.Sub(sc.epoch).Microseconds()),
			slog.Int64("dur_us", d.Microseconds()),
		)
		ev = append(ev, attrs...)
		sc.tracer.Emit(ChanSpan, "span", ev...)
	}
}

var traceIDFallback atomic.Uint64

// NewTraceID mints a 16-hex-character random trace ID (a process-unique
// counter ID if the system entropy source fails).
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("trace-%d", traceIDFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}
