package lvp_test

// One testing.B benchmark per table and figure of the paper's evaluation:
// each regenerates its experiment from scratch (trace generation, LVP
// annotation, cycle simulation) and reports the headline number as a custom
// metric, so `go test -bench=.` both regenerates the results and times the
// harness. Micro-benchmarks for the hot components follow.

import (
	"io"
	"testing"

	"lvp"
	"lvp/internal/exp"
	core "lvp/internal/lvp"
	"lvp/internal/ppc620"
)

// --- experiment-engine benchmarks: serial vs parallel ---

// runAllExperiments regenerates every registered experiment on a fresh
// suite with the given worker count, discarding the rendered output. Each
// iteration starts from cold caches, so the measurement covers the full
// fan-out: trace generation, annotation, simulation and merge.
func runAllExperiments(b *testing.B, workers int) {
	b.Helper()
	for b.Loop() {
		s := exp.NewSuiteParallel(1, workers)
		for _, e := range exp.Experiments() {
			if err := e.Run(s, io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkExpAllSerial is the baseline: the whole `-exp all` run with a
// single worker.
func BenchmarkExpAllSerial(b *testing.B) {
	runAllExperiments(b, 1)
}

// BenchmarkExpAllParallel is the same run on a GOMAXPROCS-sized pool.
// Compare with BenchmarkExpAllSerial (benchstat or the raw ns/op) to see
// the engine's speedup; on a multi-core machine the ratio tracks core
// count until the longest single simulation dominates.
func BenchmarkExpAllParallel(b *testing.B) {
	runAllExperiments(b, 0)
}

// BenchmarkExpAllParallel4 pins four workers for cross-machine
// comparability of the headline speedup figure.
func BenchmarkExpAllParallel4(b *testing.B) {
	runAllExperiments(b, 4)
}

func BenchmarkTable1(b *testing.B) {
	for b.Loop() {
		s := exp.NewSuite(1)
		r, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig1(b *testing.B) {
	var gm float64
	for b.Loop() {
		s := exp.NewSuite(1)
		r, err := s.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, row := range r.Rows {
			sum += row.PPCD1
		}
		gm = sum / float64(len(r.Rows))
	}
	b.ReportMetric(gm, "mean-d1-locality-%")
}

func BenchmarkFig2(b *testing.B) {
	for b.Loop() {
		s := exp.NewSuite(1)
		if _, err := s.Figure2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for b.Loop() {
		s := exp.NewSuite(1)
		if _, err := s.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	var mean float64
	for b.Loop() {
		s := exp.NewSuite(1)
		r, err := s.Table4()
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, row := range r.PPC {
			sum += row.Const
		}
		mean = 100 * sum / float64(len(r.PPC))
	}
	b.ReportMetric(mean, "mean-const-%")
}

func BenchmarkFig6(b *testing.B) {
	var gmSimple float64
	for b.Loop() {
		s := exp.NewSuite(1)
		r, err := s.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		gmSimple = r.GMPPC[0]
	}
	b.ReportMetric(gmSimple, "620-Simple-GM-speedup")
}

func BenchmarkTable6(b *testing.B) {
	var gmPlus float64
	for b.Loop() {
		s := exp.NewSuite(1)
		r, err := s.Table6()
		if err != nil {
			b.Fatal(err)
		}
		gmPlus = r.GMPlus
	}
	b.ReportMetric(gmPlus, "620plus-GM-speedup")
}

func BenchmarkFig7(b *testing.B) {
	for b.Loop() {
		s := exp.NewSuite(1)
		if _, err := s.Figure7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	for b.Loop() {
		s := exp.NewSuite(1)
		if _, err := s.Figure8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	for b.Loop() {
		s := exp.NewSuite(1)
		if _, err := s.Figure9(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches (DESIGN.md extras) ---

func BenchmarkAblationLVPTSweep(b *testing.B) {
	for b.Loop() {
		s := exp.NewSuite(1)
		if _, err := s.LVPTSweep([]int{256, 1024, 4096}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPredictors(b *testing.B) {
	for b.Loop() {
		s := exp.NewSuite(1)
		if _, err := s.PredictorStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- component micro-benchmarks ---

// BenchmarkTraceGeneration measures functional-simulation throughput.
func BenchmarkTraceGeneration(b *testing.B) {
	var instrs int
	for b.Loop() {
		tr, err := lvp.BuildTrace("xlisp", lvp.PPC, 1)
		if err != nil {
			b.Fatal(err)
		}
		instrs = len(tr.Records)
	}
	b.ReportMetric(float64(instrs), "instrs/op")
}

func BenchmarkAnnotateSimple(b *testing.B) {
	tr, err := lvp.BuildTrace("xlisp", lvp.PPC, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for b.Loop() {
		if _, _, err := lvp.Annotate(tr, lvp.Simple); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.Records)), "instrs/op")
}

// --- observability overhead (OBSERVABILITY.md) ---
//
// The instrumentation contract is <5% annotation overhead with tracing
// disabled. Compare these three against BenchmarkAnnotateSimple
// (benchstat, or raw ns/op): the nil-tracer and disabled-channel variants
// must stay within noise of it; only the enabled variant may cost.

// BenchmarkAnnotateNilTracer runs the traced annotation path with a nil
// tracer — the default for every cached Suite build without -trace.
func BenchmarkAnnotateNilTracer(b *testing.B) {
	tr, err := lvp.BuildTrace("xlisp", lvp.PPC, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for b.Loop() {
		if _, _, err := lvp.AnnotateTraced(tr, lvp.Simple, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.Records)), "instrs/op")
}

// BenchmarkAnnotateDisabledChannels runs with a live tracer whose LVP
// channels are all off, so every per-load emission reduces to one masked
// bitmask test.
func BenchmarkAnnotateDisabledChannels(b *testing.B) {
	tr, err := lvp.BuildTrace("xlisp", lvp.PPC, 1)
	if err != nil {
		b.Fatal(err)
	}
	tracer := lvp.NewTracer(io.Discard, lvp.ChanPipeline)
	b.ResetTimer()
	for b.Loop() {
		if _, _, err := lvp.AnnotateTraced(tr, lvp.Simple, tracer); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.Records)), "instrs/op")
}

// BenchmarkAnnotateTracedEnabled is the worst case: every LVP channel
// enabled, events serialized to io.Discard. This is expected to be slower —
// it bounds what -trace lvpt,lct,cvu costs, not the default path.
func BenchmarkAnnotateTracedEnabled(b *testing.B) {
	tr, err := lvp.BuildTrace("xlisp", lvp.PPC, 1)
	if err != nil {
		b.Fatal(err)
	}
	tracer := lvp.NewTracer(io.Discard, lvp.ChanLVPT|lvp.ChanLCT|lvp.ChanCVU)
	b.ResetTimer()
	for b.Loop() {
		if _, _, err := lvp.AnnotateTraced(tr, lvp.Simple, tracer); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.Records)), "instrs/op")
}

func BenchmarkSimulate620(b *testing.B) {
	tr, err := lvp.BuildTrace("xlisp", lvp.PPC, 1)
	if err != nil {
		b.Fatal(err)
	}
	ann, _, err := lvp.Annotate(tr, lvp.Simple)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for b.Loop() {
		st := ppc620.Simulate(tr, ann, ppc620.Config620(), "Simple")
		if st.Cycles == 0 {
			b.Fatal("no cycles")
		}
	}
	b.ReportMetric(float64(len(tr.Records)), "instrs/op")
}

func BenchmarkSimulate21164(b *testing.B) {
	tr, err := lvp.BuildTrace("xlisp", lvp.AXP, 1)
	if err != nil {
		b.Fatal(err)
	}
	ann, _, err := lvp.Annotate(tr, lvp.Simple)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for b.Loop() {
		st := lvp.Simulate21164(tr, ann, "Simple")
		if st.Cycles == 0 {
			b.Fatal("no cycles")
		}
	}
}

func BenchmarkLVPTAccess(b *testing.B) {
	t := core.NewLVPT(1024, 1)
	pc, v := uint64(0x4000), uint64(0)
	for b.Loop() {
		t.Predict(pc)
		t.Update(pc, v)
		pc += 4
		v++
	}
}

func BenchmarkCVULookup(b *testing.B) {
	c := core.NewCVU(128)
	for i := 0; i < 128; i++ {
		c.Insert(uint64(0x1000+i*8), i)
	}
	for b.Loop() {
		c.Lookup(0x1000, 0)
		c.Lookup(0xFFFF, 5)
	}
}

func BenchmarkExtensionGVL(b *testing.B) {
	for b.Loop() {
		s := exp.NewSuite(1)
		if _, err := s.GeneralValueLocality(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionPathLVP(b *testing.B) {
	for b.Loop() {
		s := exp.NewSuite(1)
		if _, err := s.PathLVPStudy([]int{0, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMAF(b *testing.B) {
	for b.Loop() {
		s := exp.NewSuite(1)
		if _, err := s.MAFAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLimitStudy(b *testing.B) {
	for b.Loop() {
		s := exp.NewSuite(1)
		if _, err := s.DataflowLimits(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionGVP(b *testing.B) {
	for b.Loop() {
		s := exp.NewSuite(1)
		if _, err := s.GVPStudy(); err != nil {
			b.Fatal(err)
		}
	}
}
