# Development targets for the lvp repository.
#
# `make check` is the tier-1 gate (build + tests). `make race` runs the
# race detector over the fast tests; `make race-full` includes the golden
# serial-vs-parallel render, which is expensive under the detector.

GO ?= go

.PHONY: all build check test race race-full fuzz bench verify clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

check: build test

# Race-detector pass over every package. -short skips the golden
# double-render (TestGoldenSerialVsParallel), which the detector slows by an
# order of magnitude; all concurrency unit tests (internal/par, the suite
# cache paths, the cheap golden repeat) still run under the detector.
race:
	$(GO) test -race -short ./...

# Full race pass including the golden serial-vs-parallel gate (narrowed to
# a representative experiment subset under the detector — see
# internal/exp/golden_test.go). The timeout margin covers small machines.
race-full:
	$(GO) test -race -timeout 30m ./...

# Short fuzz session over the trace codec round-trip property.
fuzz:
	$(GO) test -fuzz=FuzzRoundTrip -fuzztime=30s ./internal/trace/

# Experiment-engine benchmarks: compare ExpAllSerial vs ExpAllParallel for
# the worker-pool speedup.
bench:
	$(GO) test -run xxx -bench 'BenchmarkExpAll' -benchtime 2x .

verify: check race

clean:
	$(GO) clean ./...
