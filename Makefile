# Development targets for the lvp repository.
#
# `make check` is the full local gate: build, static checks (vet + gofmt),
# tests, and the race-detector pass. `make race-full` includes the golden
# serial-vs-parallel render, which is expensive under the detector.

GO ?= go

.PHONY: all build check test vet race race-full fuzz bench bench-obs bench-stream bench-json bench-json-smoke check-stream check-perf check-zoo check-obs serve check-serve check-dist check-vlt2 verify clean

all: build

build:
	$(GO) build ./...
	$(GO) build -o bin/lvpd ./cmd/lvpd

test:
	$(GO) test ./...

# Static checks: go vet plus a gofmt cleanliness gate (fails listing any
# file that gofmt would rewrite).
vet:
	$(GO) vet ./...
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi

check: build vet test race check-perf check-zoo check-obs check-dist check-vlt2

# Race-detector pass over every package. -short skips the golden
# double-render (TestGoldenSerialVsParallel), which the detector slows by an
# order of magnitude; all concurrency unit tests (internal/par, internal/obs,
# the suite cache paths, the cheap golden repeat) still run under the
# detector.
race:
	$(GO) test -race -short ./...

# Full race pass including the golden serial-vs-parallel gate (narrowed to
# a representative experiment subset under the detector — see
# internal/exp/golden_test.go). The timeout margin covers small machines.
race-full:
	$(GO) test -race -timeout 30m ./...

# Short fuzz sessions over the trace codecs: the whole-trace round-trip
# property, the streaming Reader/Writer round-trip property, and the VLT2
# block-codec round-trip (both decode paths, every codec).
fuzz:
	$(GO) test -fuzz='FuzzRoundTrip$$' -fuzztime=30s ./internal/trace/
	$(GO) test -fuzz='FuzzStreamRoundTrip$$' -fuzztime=30s ./internal/trace/
	$(GO) test -fuzz='FuzzVLT2RoundTrip$$' -fuzztime=30s ./internal/trace/

# Experiment-engine benchmarks: compare ExpAllSerial vs ExpAllParallel for
# the worker-pool speedup.
bench:
	$(GO) test -run xxx -bench 'BenchmarkExpAll' -benchtime 2x .

# Observability overhead benchmarks: AnnotateSimple vs the nil-tracer and
# disabled-channel variants must agree within noise (<5%); see
# OBSERVABILITY.md.
bench-obs:
	$(GO) test -run xxx -bench 'BenchmarkAnnotate' -benchtime 2s -count 3 .

# Streaming-layer benchmarks: record-at-a-time decode/encode vs the
# whole-trace codec, batched vs per-record decode (StreamDecodeBatch vs
# StreamDecode), and the fused gen→annotate→sim cell on both interface
# chains (StreamFusedBatch vs StreamFusedPerRecord).
bench-stream:
	$(GO) test -run xxx -bench 'Stream|MemDecode|MemEncode|MemPipeline' -benchtime 1s ./internal/trace/ ./internal/exp/

# Benchmark-trajectory grid (see PERFORMANCE.md): the full run refreshes the
# checked-in BENCH_PR10.json baseline; the smoke run is the CI sizing that
# uploads an informational artifact and logs >20% ratio drift against the
# checked-in snapshot without gating (ratios divide two cells measured on
# the same machine, so they survive host-speed differences that raw ns/rec
# numbers don't).
bench-json:
	$(GO) run ./cmd/lvpbench -out BENCH_PR10.json

bench-json-smoke:
	$(GO) run ./cmd/lvpbench -smoke -out bench-smoke.json -compare BENCH_PR10.json

# Streaming memory/identity gate, run standalone (uncached): the
# allocation-regression tests (0 allocs/record on the Reader/Writer/LVP hot
# paths), the 10M-record peak-RSS bound, and the per-workload differential
# between the streamed and in-memory pipelines. All of these also run as
# part of plain `make test` / `make check`.
check-stream:
	$(GO) test -count=1 -run 'AllocFree|TestStreamRSS|TestStreamDifferential|TestAnnotatorMatchesAnnotate|TestReaderMatchesRead' ./internal/trace/ ./internal/lvp/ ./internal/exp/

# Hot-path identity and allocation gates, run standalone (uncached): the
# randomized CVU differential against the linear-scan reference (states,
# stats, and eviction victims must be decision-identical), the batched
# decode/annotate differentials, and the 0-allocs/record gates on the
# steady-state CVU and batch paths.
check-perf:
	$(GO) test -count=1 -run 'TestCVUDifferential|TestCVUInvalidateAddrBoundaries|TestCVUInsertRefresh|TestCVUOpsAllocFree|NextBatch|TestPump|TestRecordBatch' ./internal/lvp/ ./internal/trace/ ./internal/vm/

# Predictor-zoo gate, run standalone (uncached): the randomized two-level
# differential against the map-based reference (predictions, confidence
# state, and replacement victims must be decision-identical), the
# tagged/set-associative LVPT property tests (alias freedom, LRU victim
# order, 0-allocs gates), the stride edge cases, the checked-in zoosweep
# golden table, serial-vs-parallel byte identity, and the served-vs-direct
# zoo-cell identity — the concurrent sweep tests under the race detector.
check-zoo:
	$(GO) test -count=1 -run 'TwoLevel|Assoc|Tagged|Stride|Family|MeasureZoo|TestZoo' ./internal/lvp/ ./internal/exp/
	$(GO) test -race -count=1 -run 'TestZoo' ./internal/exp/ ./internal/serve/

# Serving-telemetry gate, run standalone (uncached): the disabled-path
# overhead contract (0 allocs/op for histogram Observe and scope-less span
# calls, tracer two-compares-when-off), Prometheus exposition conformance
# (parse-back, cumulative buckets, label escaping), the span-channel golden
# schema, the timeline endpoint e2e, and the tracing-on byte-identity gate —
# then the concurrency tests again under the race detector.
check-obs:
	$(GO) test -count=1 -run 'Histogram|Span|Prometheus|Timeline|AccessLog|RequestID|TracingOn|Publish|BucketBounds|BucketIndex|FlightRecorder' ./internal/obs/ ./internal/serve/
	$(GO) test -race -count=1 -run 'TestHistogramConcurrent|TestSpanConcurrent|TestConcurrentPublish|TestTracingOnIdentity' ./internal/obs/ ./internal/serve/

# VLT2 block-codec gate, run standalone (uncached): the VLT1/VLT2
# cross-format differential (records, annotation bytes, and all three
# machine models' stats byte-identical regardless of format), the
# hostile-input table (truncated blocks, corrupted checksums, lying header
# lengths, overlapping index entries — clean errors, never panics), the
# checked-in fuzz corpus seeds, the random-seek and parallel-width property
# tests, and the 0-allocs/record gates on the VLT2 batch paths — then the
# parallel-decode identity property again under the race detector.
check-vlt2:
	$(GO) test -count=1 -run 'TestVLT2|FuzzVLT2' ./internal/trace/
	$(GO) test -count=1 -run 'TestFormatDifferential' ./internal/exp/
	$(GO) test -race -count=1 -short -run 'TestVLT2ParallelWidthsProperty|TestVLT2SeekProperty' ./internal/trace/

# Run the experiment daemon locally (see SERVING.md for the API).
serve:
	$(GO) run ./cmd/lvpd -addr :8347

# Serving-layer gate: the lvpd job manager, HTTP API, and client — including
# the byte-identity, drain, backpressure, and cancellation tests — under the
# race detector.
check-serve:
	$(GO) test -race -count=1 ./internal/serve/ ./client/

# Distributed-mode gate, run standalone (uncached) under the race detector:
# a coordinator fronting two in-process workers must stream NDJSON
# byte-identical to a single-node daemon — including with a worker killed
# mid-job (failover + goroutine-leak check) — plus the content-addressed
# store (LRU, disk persistence, restart-hit acceptance), the /v1/cells
# worker endpoint, readiness-body placement inputs, per-tenant admission,
# and the jittered-backoff distribution bounds in the client.
check-dist:
	$(GO) test -race -count=1 ./internal/dist/
	$(GO) test -race -count=1 -run 'TestExecCell|TestReadyz|TestTenant|TestStore|TestCellValidate|TestJitter|TestReadinessDecodes' ./internal/serve/ ./client/

verify: check

clean:
	$(GO) clean ./...
	rm -rf bin
