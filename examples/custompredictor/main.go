// Custompredictor: plug a user-defined value predictor into the framework —
// the extension direction the paper's §7 sketches ("moving beyond
// history-based prediction to computed predictions").
//
// The example builds a hybrid predictor that arbitrates between a last-value
// and a stride component with per-entry confidence counters, then compares
// it against the built-in predictors across the whole suite.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"lvp"
)

// hybrid arbitrates between last-value and stride prediction with a
// per-entry 2-bit chooser (positive = trust stride), updated towards
// whichever component was right.
type hybrid struct {
	last    lvp.Predictor
	stride  lvp.Predictor
	chooser []int8
	mask    uint64
}

func newHybrid(entries int) *hybrid {
	return &hybrid{
		last:    lvp.NewLastValue(entries),
		stride:  lvp.NewStride(entries),
		chooser: make([]int8, entries),
		mask:    uint64(entries - 1),
	}
}

func (h *hybrid) Name() string { return "hybrid" }

func (h *hybrid) idx(pc uint64) int { return int((pc / 4) & h.mask) }

func (h *hybrid) Predict(pc uint64) uint64 {
	if h.chooser[h.idx(pc)] > 0 {
		return h.stride.Predict(pc)
	}
	return h.last.Predict(pc)
}

func (h *hybrid) Update(pc, actual uint64) {
	i := h.idx(pc)
	lv := h.last.Predict(pc) == actual
	st := h.stride.Predict(pc) == actual
	switch {
	case st && !lv && h.chooser[i] < 2:
		h.chooser[i]++
	case lv && !st && h.chooser[i] > -2:
		h.chooser[i]--
	}
	h.last.Update(pc, actual)
	h.stride.Update(pc, actual)
}

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tlast-value\tstride\tcontext-2\thybrid")
	for _, b := range lvp.Benchmarks() {
		tr, err := lvp.BuildTrace(b.Name, lvp.PPC, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\n", b.Name,
			100*lvp.MeasurePredictor(tr, lvp.NewLastValue(1024)),
			100*lvp.MeasurePredictor(tr, lvp.NewStride(1024)),
			100*lvp.MeasurePredictor(tr, lvp.NewContext(1024, 4096)),
			100*lvp.MeasurePredictor(tr, newHybrid(1024)))
	}
	w.Flush()
}
