// Bandwidth: quantify the CVU's memory-bandwidth effects (paper §3.3, §6.5):
// the fraction of loads that bypass the memory hierarchy entirely, the
// reduction in L1 data-cache accesses on the 620, and the change in bank
// conflicts, comparing the Simple (32-entry CVU) and Constant (128-entry
// CVU, 1-bit LCT) configurations.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"lvp"
)

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	// Note: as in the paper (§3.4), a CVU match cannot stop an L1 access
	// that has already been initiated; it only cancels the retry after a
	// bank conflict or the miss service. The bandwidth savings therefore
	// show up in L2 traffic and conflict retries, not raw L1 accesses.
	fmt.Fprintln(w, "benchmark\tconst% (Simple)\tconst% (Constant)\tL2 accesses saved\tbank-conflict cycles (none/Simple/Constant)")
	for _, b := range lvp.Benchmarks() {
		tr, err := lvp.BuildTrace(b.Name, lvp.PPC, 1)
		if err != nil {
			log.Fatal(err)
		}
		annS, stS, err := lvp.Annotate(tr, lvp.Simple)
		if err != nil {
			log.Fatal(err)
		}
		annC, stC, err := lvp.Annotate(tr, lvp.Constant)
		if err != nil {
			log.Fatal(err)
		}
		base := lvp.Simulate620(tr, nil, "")
		simple := lvp.Simulate620(tr, annS, "Simple")
		constant := lvp.Simulate620(tr, annC, "Constant")
		saved := 0.0
		if base.L2.Accesses > 0 {
			saved = 100 * float64(base.L2.Accesses-constant.L2.Accesses) /
				float64(base.L2.Accesses)
		}
		fmt.Fprintf(w, "%s\t%.1f%%\t%.1f%%\t%.1f%%\t%d / %d / %d\n", b.Name,
			100*stS.ConstantRate(), 100*stC.ConstantRate(), saved,
			base.BankConflictCycles, simple.BankConflictCycles, constant.BankConflictCycles)
	}
	w.Flush()
}
