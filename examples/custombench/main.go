// Custombench: author a brand-new workload against the framework's program
// builder, run it through the whole pipeline — functional execution, value
// locality, LVP unit, 620 timing — and see where it lands relative to the
// built-in suite.
//
// The workload is a telephone-directory lookup loop: a fixed set of records
// is searched through a hash-bucket table. Bucket-head loads are run-time
// constants (high value locality); record-key loads vary. Workload authoring
// uses the internal builder API directly (it is the framework's extension
// point; the public facade covers the measurement/simulation side).
package main

import (
	"fmt"
	"log"

	"lvp"
	"lvp/internal/isa"
	"lvp/internal/prog"
	"lvp/internal/vm"
)

const (
	nRecords = 64
	nBuckets = 32 // power of two
	nQueries = 4000
)

func buildDirectory(t prog.Target) (*prog.Program, error) {
	b := prog.New("directory", t)

	// Records: [key, value] pairs; buckets: head index per hash, -1 empty;
	// next: chain links.
	keys := make([]int64, nRecords)
	vals := make([]int64, nRecords)
	buckets := make([]int64, nBuckets)
	next := make([]int64, nRecords)
	for i := range buckets {
		buckets[i] = -1
	}
	for i := range keys {
		keys[i] = int64(1000 + i*7)
		vals[i] = int64(5000 + i)
		h := keys[i] % nBuckets
		next[i] = buckets[h]
		buckets[h] = int64(i)
	}
	b.WordsPtr("keys", keys)
	b.WordsPtr("vals", vals)
	b.WordsPtr("buckets", buckets)
	b.WordsPtr("next", next)
	b.Zeros("errflag", 8)

	sh := b.PtrShift()

	f := b.Func("main", 0, prog.S0, prog.S1, prog.S2, prog.S3)
	b.Li(prog.S0, 0) // query counter
	b.MaterializeInt(prog.S1, nQueries)
	b.Li(prog.S2, 0)                     // found-value checksum
	b.MaterializeInt(prog.T9, 123456789) // query PRNG state
	loop, done := b.NewLabel("loop"), b.NewLabel("done")
	b.Label(loop)
	b.Branch(isa.BGE, prog.S0, prog.S1, done)
	// key = 1000 + 7*(lcg % 64); always present
	b.MaterializeInt(prog.T0, 1103515245)
	b.Op3(isa.MUL, prog.T9, prog.T9, prog.T0)
	b.OpI(isa.ADDI, prog.T9, prog.T9, 12345)
	b.OpI(isa.SHRI, prog.T1, prog.T9, 16)
	b.OpI(isa.ANDI, prog.T1, prog.T1, nRecords-1)
	b.Li(prog.T2, 7)
	b.Op3(isa.MUL, prog.A0, prog.T1, prog.T2)
	b.OpI(isa.ADDI, prog.A0, prog.A0, 1000)
	b.Call("lookup")
	b.Op3(isa.ADD, prog.S2, prog.S2, prog.A0)
	b.OpI(isa.ADDI, prog.S0, prog.S0, 1)
	b.Jump(loop)
	b.Label(done)
	b.ErrorCheck("errflag", "dirfail")
	b.Out(prog.S2)
	f.Epilogue()

	b.Label("dirfail")
	b.Li(prog.A0, -1)
	b.Out(prog.A0)
	b.Halt()

	// lookup(A0 = key) -> A0 = value (or 0). Bucket-head loads are
	// run-time constants; chain walks vary with the key.
	g := b.Func("lookup", 0, prog.S0, prog.S1, prog.S2, prog.S3)
	g.MarkPtr(prog.S0, prog.S1, prog.S2, prog.S3)
	b.GotData(prog.S0, "buckets")
	b.GotData(prog.S1, "keys")
	b.GotData(prog.S2, "next")
	b.GotData(prog.S3, "vals")
	b.Mv(prog.T8, prog.A0) // key
	b.OpI(isa.ANDI, prog.T0, prog.T8, nBuckets-1)
	b.OpI(isa.SHLI, prog.T0, prog.T0, sh)
	b.Op3(isa.ADD, prog.T0, prog.T0, prog.S0)
	b.LoadInt(prog.T1, prog.T0, 0) // bucket head (constant per bucket)
	walk, miss, hit := b.NewLabel("walk"), b.NewLabel("miss"), b.NewLabel("hit")
	b.Label(walk)
	b.Branch(isa.BLT, prog.T1, prog.Zero, miss)
	b.OpI(isa.SHLI, prog.T2, prog.T1, sh)
	b.Op3(isa.ADD, prog.T3, prog.T2, prog.S1)
	b.LoadInt(prog.T4, prog.T3, 0) // record key
	b.Branch(isa.BEQ, prog.T4, prog.T8, hit)
	b.Op3(isa.ADD, prog.T5, prog.T2, prog.S2)
	b.LoadInt(prog.T1, prog.T5, 0) // chain link (constant per record)
	b.Jump(walk)
	b.Label(miss)
	b.Li(prog.A0, 0)
	b.Jump("lret")
	b.Label(hit)
	b.Op3(isa.ADD, prog.T6, prog.T2, prog.S3)
	b.LoadInt(prog.A0, prog.T6, 0) // value (constant per record)
	b.Label("lret")
	g.Epilogue()

	return b.Build()
}

func main() {
	p, err := buildDirectory(prog.PPC)
	if err != nil {
		log.Fatal(err)
	}
	tr, res, err := vm.Run(p, 10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("directory: %d instructions, checksum %d\n", res.Steps, res.Output[0])

	for _, r := range lvp.MeasureLocality(tr, 1, 16) {
		fmt.Printf("value locality, depth %2d: %5.1f%%\n", r.Depth, r.Overall.Percent())
	}
	for _, cfg := range lvp.Configs() {
		ann, st, err := lvp.Annotate(tr, cfg)
		if err != nil {
			log.Fatal(err)
		}
		base := lvp.Simulate620(tr, nil, "")
		fast := lvp.Simulate620(tr, ann, cfg.Name)
		fmt.Printf("%-9s coverage %5.1f%%  constants %5.1f%%  620 speedup %.3f\n",
			cfg.Name, 100*st.Coverage(), 100*st.ConstantRate(),
			float64(base.Cycles)/float64(fast.Cycles))
	}
}
