; dfa.s — the paper's grep-style hot loop, in VLR assembly: a DFA scan whose
; state-transition load forms a serial, mostly-predictable dependence chain.
;
;   go run ./cmd/lvpasm -analyze examples/asm/dfa.s
;   go run ./cmd/lvpdump -asm examples/asm/dfa.s
;
.words64 tab 5, 5, 5, 5, 9, 5, 5, 5
.zeros   hits 8

main:
    la   s0, tab !daddr
    la   s1, hits !daddr
    li   s2, 0            ; index
    li   s3, 0            ; sum
    li   s4, 20000        ; iterations
loop:
    andi t0, s2, 7
    shli t0, t0, 3
    add  t0, t0, s0
    ld   t1, 0(t0)        ; mostly 5: high value locality
    add  s3, s3, t1
    addi s2, s2, 1
    blt  s2, s4, loop
    sd   s3, 0(s1)
    out  s3
    ret
