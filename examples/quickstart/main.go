// Quickstart: measure value locality of one workload, attach the paper's
// Simple LVP unit, and compare PowerPC 620 cycle counts with and without it.
package main

import (
	"fmt"
	"log"

	"lvp"
)

func main() {
	// 1. Build and functionally execute a workload, collecting its trace
	// (the paper's trace-generation phase).
	tr, err := lvp.BuildTrace("grep", lvp.PPC, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %s/%s, %d instructions\n", tr.Name, tr.Target, len(tr.Records))

	// 2. Measure load value locality at history depths 1 and 16
	// (paper Figure 1).
	for _, r := range lvp.MeasureLocality(tr, 1, 16) {
		fmt.Printf("value locality, depth %2d: %5.1f%%\n", r.Depth, r.Overall.Percent())
	}

	// 3. Run the LVP unit over the trace (paper's annotation phase).
	ann, stats, err := lvp.Annotate(tr, lvp.Simple)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Simple LVP unit: coverage %.1f%%, accuracy %.1f%%, constants %.1f%%\n",
		100*stats.Coverage(), 100*stats.Accuracy(), 100*stats.ConstantRate())

	// 4. Feed the annotated trace to the cycle-level 620 model.
	base := lvp.Simulate620(tr, nil, "")
	fast := lvp.Simulate620(tr, ann, "Simple")
	fmt.Printf("PowerPC 620:  base %d cycles (IPC %.2f)\n", base.Cycles, base.IPC())
	fmt.Printf("PowerPC 620:  +LVP %d cycles (IPC %.2f)\n", fast.Cycles, fast.IPC())
	fmt.Printf("speedup: %.3f\n", float64(base.Cycles)/float64(fast.Cycles))
}
