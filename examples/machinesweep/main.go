// Machinesweep: run one benchmark through every LVP configuration on all
// three machine models (620, 620+, 21164) and print the speedup matrix —
// a single-benchmark slice of the paper's Figure 6 and Table 6.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"lvp"
)

func main() {
	name := flag.String("bench", "xlisp", "benchmark to sweep")
	scale := flag.Int("scale", 1, "run-length multiplier")
	flag.Parse()

	// The 620 models consume PPC-target traces; the 21164 consumes AXP
	// traces (the paper's AIX/OSF split).
	ppcTrace, err := lvp.BuildTrace(*name, lvp.PPC, *scale)
	if err != nil {
		log.Fatal(err)
	}
	axpTrace, err := lvp.BuildTrace(*name, lvp.AXP, *scale)
	if err != nil {
		log.Fatal(err)
	}

	base620 := lvp.Simulate620(ppcTrace, nil, "")
	basePlus := lvp.Simulate620Plus(ppcTrace, nil, "")
	base164 := lvp.Simulate21164(axpTrace, nil, "")

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "benchmark %s\tPPC 620\tPPC 620+\tAXP 21164\n", *name)
	fmt.Fprintf(w, "base IPC\t%.2f\t%.2f\t%.2f\n", base620.IPC(), basePlus.IPC(), base164.IPC())
	for _, cfg := range lvp.Configs() {
		ppcAnn, _, err := lvp.Annotate(ppcTrace, cfg)
		if err != nil {
			log.Fatal(err)
		}
		axpAnn, _, err := lvp.Annotate(axpTrace, cfg)
		if err != nil {
			log.Fatal(err)
		}
		s620 := lvp.Simulate620(ppcTrace, ppcAnn, cfg.Name)
		sPlus := lvp.Simulate620Plus(ppcTrace, ppcAnn, cfg.Name)
		s164 := lvp.Simulate21164(axpTrace, axpAnn, cfg.Name)
		fmt.Fprintf(w, "%s speedup\t%.3f\t%.3f\t%.3f\n", cfg.Name,
			float64(base620.Cycles)/float64(s620.Cycles),
			float64(basePlus.Cycles)/float64(sPlus.Cycles),
			float64(base164.Cycles)/float64(s164.Cycles))
	}
	w.Flush()
}
