// Predictorzoo: sweep the registered predictor families over a few
// benchmarks through the public facade — the same measurement the
// `lvpsim -exp zoosweep` experiment and lvpd's "predictors" job cells run.
//
// The zoo separates coverage (exact hits over all loads) from accuracy
// (exact hits over the predictions the family actually spoke): families
// with confidence — the two-level VHT/VPT context predictor, the
// tagged/set-associative last-value tables — decline on cold or low-
// confidence entries, trading coverage for far fewer mispredictions. The
// tagged/associative families also report their interference counters
// (tag misses, alias evictions), which stay zero for organisations that
// cannot observe aliasing.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"lvp"
)

func main() {
	benchmarks := []string{"grep", "gawk", "eqntott", "gperf"}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "family\tbenchmark\tcoverage\taccuracy\ttag misses\talias evicts")
	for _, f := range lvp.Families() {
		for _, b := range benchmarks {
			tr, err := lvp.BuildTrace(b, lvp.PPC, 1)
			if err != nil {
				log.Fatal(err)
			}
			m := lvp.MeasureZoo(tr, f.New())
			fmt.Fprintf(w, "%s\t%s\t%.2f%%\t%.2f%%\t%d\t%d\n",
				f.Name, b, 100*m.Coverage(), 100*m.Accuracy(),
				m.TagMisses, m.AliasEvicts)
		}
	}
	w.Flush()

	// A custom geometry outside the registry: a wider two-level predictor
	// with 3-bit confidence, built directly.
	p := lvp.NewTwoLevel(lvp.TwoLevelConfig{
		VHTEntries: 2048, HistLen: 6, VPTEntries: 8192,
		ConfBits: 3, ConfThreshold: 3,
	})
	tr, err := lvp.BuildTrace("gperf", lvp.PPC, 1)
	if err != nil {
		log.Fatal(err)
	}
	m := lvp.MeasureZoo(tr, p)
	fmt.Printf("\ncustom two-level (k=6, 3-bit conf) on gperf: coverage %.2f%%, accuracy %.2f%%\n",
		100*m.Coverage(), 100*m.Accuracy())
}
