package lvp_test

import (
	"testing"

	"lvp"
)

// The facade tests exercise the public API end-to-end the way the README's
// quickstart does.

func TestFacadeQuickstartFlow(t *testing.T) {
	tr, err := lvp.BuildTrace("grep", lvp.PPC, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "grep" || tr.Target != "ppc" || len(tr.Records) == 0 {
		t.Fatalf("bad trace: %s/%s, %d records", tr.Name, tr.Target, len(tr.Records))
	}
	loc := lvp.MeasureLocality(tr, 1, 16)
	if len(loc) != 2 || loc[0].Depth != 1 || loc[1].Depth != 16 {
		t.Fatalf("bad locality result: %+v", loc)
	}
	if loc[1].Overall.Percent() < loc[0].Overall.Percent() {
		t.Error("depth-16 locality below depth-1")
	}
	ann, st, err := lvp.Annotate(tr, lvp.Simple)
	if err != nil {
		t.Fatal(err)
	}
	if len(ann) != len(tr.Records) {
		t.Fatal("annotation length mismatch")
	}
	if st.Loads == 0 || st.Coverage() <= 0 {
		t.Fatalf("degenerate unit stats: %+v", st)
	}
	base := lvp.Simulate620(tr, nil, "")
	fast := lvp.Simulate620(tr, ann, "Simple")
	if base.Cycles <= 0 || fast.Cycles <= 0 {
		t.Fatal("empty simulations")
	}
	if fast.Cycles > base.Cycles*11/10 {
		t.Errorf("Simple LVP slowed grep by >10%%: %d vs %d", fast.Cycles, base.Cycles)
	}
}

func TestFacadeBenchmarkList(t *testing.T) {
	bs := lvp.Benchmarks()
	names := lvp.BenchmarkNames()
	if len(bs) != 17 {
		t.Errorf("suite has %d benchmarks, want 17 (paper Table 1)", len(bs))
	}
	if len(names) != len(bs) {
		t.Error("name list length mismatch")
	}
	want := map[string]bool{
		"cc1-271": true, "cc1": true, "cjpeg": true, "compress": true,
		"doduc": true, "eqntott": true, "gawk": true, "gperf": true,
		"grep": true, "hydro2d": true, "mpeg": true, "perl": true,
		"quick": true, "sc": true, "swm256": true, "tomcatv": true,
		"xlisp": true,
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected benchmark %q", n)
		}
		delete(want, n)
	}
	for n := range want {
		t.Errorf("missing paper benchmark %q", n)
	}
}

func TestFacadeConfigs(t *testing.T) {
	cfgs := lvp.Configs()
	if len(cfgs) != 4 {
		t.Fatalf("%d configs, want 4", len(cfgs))
	}
	if cfgs[0].Name != "Simple" || cfgs[3].Name != "Perfect" {
		t.Errorf("config order: %v", cfgs)
	}
}

func TestFacadePredictors(t *testing.T) {
	tr, err := lvp.BuildTrace("eqntott", lvp.AXP, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []lvp.Predictor{
		lvp.NewLastValue(1024), lvp.NewStride(1024), lvp.NewContext(1024, 4096),
	} {
		acc := lvp.MeasurePredictor(tr, p)
		if acc < 0 || acc > 1 {
			t.Errorf("%s accuracy out of range: %v", p.Name(), acc)
		}
	}
}

func TestFacade21164(t *testing.T) {
	tr, err := lvp.BuildTrace("compress", lvp.AXP, 1)
	if err != nil {
		t.Fatal(err)
	}
	ann, _, err := lvp.Annotate(tr, lvp.Limit)
	if err != nil {
		t.Fatal(err)
	}
	base := lvp.Simulate21164(tr, nil, "")
	fast := lvp.Simulate21164(tr, ann, "Limit")
	if fast.Cycles >= base.Cycles {
		t.Errorf("Limit LVP should speed up compress on the 21164: %d vs %d",
			fast.Cycles, base.Cycles)
	}
}

func TestFacadeUnknownBenchmark(t *testing.T) {
	if _, err := lvp.BuildTrace("nope", lvp.PPC, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestFacadeExtensions(t *testing.T) {
	tr, err := lvp.BuildTrace("cc1", lvp.PPC, 1)
	if err != nil {
		t.Fatal(err)
	}
	// General value locality.
	gl := lvp.MeasureGeneralLocality(tr, 1, 16)
	if len(gl) != 2 || gl[0].Overall.Total == 0 {
		t.Fatalf("general locality degenerate: %+v", gl)
	}
	if gl[1].Overall.Percent() < gl[0].Overall.Percent() {
		t.Error("depth-16 general locality below depth-1")
	}
	// Path-indexed predictor: cc1 must gain from branch history.
	base := lvp.MeasurePathPredictor(tr, 4096, 0)
	path := lvp.MeasurePathPredictor(tr, 4096, 8)
	if path < base {
		t.Errorf("path prediction (%v) below last-value (%v) on cc1", path, base)
	}
	// General annotation feeds the 620 model.
	ann, st, err := lvp.AnnotateGeneral(tr, lvp.Simple)
	if err != nil {
		t.Fatal(err)
	}
	if st.Loads == 0 {
		t.Fatal("general annotation saw no writers")
	}
	sim := lvp.Simulate620(tr, ann, "GVP")
	if sim.Cycles <= 0 {
		t.Fatal("GVP simulation empty")
	}
	// Dataflow analysis.
	df := lvp.AnalyzeDataflow(tr, nil)
	if df.CriticalPath <= 0 || df.LimitIPC() <= 0 {
		t.Fatalf("dataflow result degenerate: %+v", df)
	}
	loadAnn, _, err := lvp.Annotate(tr, lvp.Perfect)
	if err != nil {
		t.Fatal(err)
	}
	collapsed := lvp.AnalyzeDataflow(tr, loadAnn)
	if collapsed.CriticalPath > df.CriticalPath {
		t.Error("collapsing loads lengthened the dataflow critical path")
	}
	// 620+ and two-value predictor facade paths.
	plus := lvp.Simulate620Plus(tr, nil, "")
	if plus.Cycles <= 0 || plus.Machine != "620+" {
		t.Errorf("620+ facade: %+v", plus.Machine)
	}
	if acc := lvp.MeasurePredictor(tr, lvp.NewTwoValue(1024)); acc <= 0 {
		t.Error("two-value accuracy zero")
	}
	// Suite facade.
	s := lvp.NewSuite(1)
	if s == nil {
		t.Fatal("nil suite")
	}
}
