module lvp

go 1.24
