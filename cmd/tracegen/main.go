// Command tracegen builds a benchmark, executes it functionally, and writes
// its dynamic instruction trace — the counterpart of the paper's
// TRIP6000/ATOM tracing step (§5). -format selects the on-disk encoding:
// vlt1 (the original streaming format) or vlt2 (block-structured:
// compressed, seekable, parallel-decodable); -codec picks the VLT2 block
// codec.
//
// Usage:
//
//	tracegen -bench grep -target ppc -scale 1 -o grep.ppc.vlt
//	tracegen -bench grep -format vlt2 -codec flate -o grep.ppc.vlt2
//	tracegen -bench grep -target ppc -stream -o grep.ppc.vlt   # bounded memory
//	tracegen -bench grep -scale 64 -pprof localhost:6060 -o /dev/null
//	tracegen -list
//
// -pprof serves net/http/pprof on the given address while the trace is
// generated (same helper as lvpsim -pprof), for profiling the generation
// phase itself.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lvp/internal/bench"
	"lvp/internal/obs"
	"lvp/internal/prog"
	"lvp/internal/trace"
	"lvp/internal/version"
	"lvp/internal/vm"
)

func main() {
	var (
		benchName   = flag.String("bench", "", "benchmark name (see -list)")
		target      = flag.String("target", "ppc", "codegen target: ppc or axp")
		scale       = flag.Int("scale", 1, "run-length multiplier")
		out         = flag.String("o", "", "output file (default <bench>.<target>.vlt)")
		stream      = flag.Bool("stream", false, "stream records to the output as the VM executes (bounded memory)")
		formatName  = flag.String("format", "vlt1", "output trace format: vlt1 or vlt2")
		codecName   = flag.String("codec", "raw", "vlt2 block codec: raw, flate, fixed, or fixed-flate")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address while generating")
		list        = flag.Bool("list", false, "list benchmarks and exit")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("tracegen"))
		return
	}

	if *list {
		for _, b := range bench.All() {
			fmt.Printf("%-10s %s\n", b.Name, b.Description)
		}
		return
	}
	if *benchName == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -bench is required (use -list)")
		os.Exit(2)
	}
	if *pprofAddr != "" {
		obs.StartDebugServer(*pprofAddr, "tracegen")
	}
	tg, err := prog.TargetByName(*target)
	if err != nil {
		fatal(err)
	}
	b, err := bench.ByName(*benchName)
	if err != nil {
		fatal(err)
	}
	p, err := b.Build(tg, *scale)
	if err != nil {
		fatal(err)
	}
	format, err := trace.FormatByName(*formatName)
	if err != nil {
		fatal(err)
	}
	codec, err := trace.BlockCodecByName(*codecName)
	if err != nil {
		fatal(err)
	}
	if format == trace.FormatVLT1 && codec != trace.CodecRaw {
		fatal(fmt.Errorf("-codec applies only to -format vlt2"))
	}
	path := *out
	if path == "" {
		ext := "vlt"
		if format == trace.FormatVLT2 {
			ext = "vlt2"
		}
		path = fmt.Sprintf("%s.%s.%s", *benchName, tg.Name, ext)
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	var sum trace.Summary
	var outputs int
	if *stream {
		// Stream each record to disk as the VM retires it: memory stays
		// bounded by the encoder's buffer regardless of run length. The
		// VLT1 record count is backpatched into the header at Close; VLT2
		// carries its totals in the footer.
		sum, outputs, err = streamTrace(f, p, format, codec)
	} else {
		var t *trace.Trace
		var res *vm.Result
		t, res, err = vm.Run(p, 0)
		if err == nil {
			if format == trace.FormatVLT2 {
				err = trace.Write2(f, t, trace.Writer2Options{Codec: codec})
			} else {
				err = trace.Write(f, t)
			}
			sum = t.Summarize()
			outputs = len(res.Output)
		}
	}
	if err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d instructions, %d loads, %d outputs\n",
		path, sum.Instructions, sum.Loads, outputs)
}

// streamTrace executes p, encoding each retired record into w on the fly,
// and returns the streaming summary plus the program's output count.
func streamTrace(w *os.File, p *prog.Program, format trace.Format, codec trace.BlockCodec) (trace.Summary, int, error) {
	src := vm.NewSource(p, 0)
	var sw trace.Encoder
	var err error
	if format == trace.FormatVLT2 {
		sw, err = trace.NewWriter2Opts(w, p.Name, p.Target.Name, trace.Writer2Options{Codec: codec})
	} else {
		sw, err = trace.NewWriter(w, p.Name, p.Target.Name)
	}
	if err != nil {
		return trace.Summary{}, 0, err
	}
	z := trace.NewSummarizer(p.Name, p.Target.Name)
	for {
		r, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return trace.Summary{}, 0, err
		}
		if err := sw.WriteRecord(r); err != nil {
			return trace.Summary{}, 0, err
		}
		z.Add(r)
	}
	if err := sw.Close(); err != nil {
		return trace.Summary{}, 0, err
	}
	return z.Summary(), len(src.Result().Output), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
