// Command tracegen builds a benchmark, executes it functionally, and writes
// its dynamic instruction trace in the VLT1 binary format — the counterpart
// of the paper's TRIP6000/ATOM tracing step (§5).
//
// Usage:
//
//	tracegen -bench grep -target ppc -scale 1 -o grep.ppc.vlt
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"lvp/internal/bench"
	"lvp/internal/prog"
	"lvp/internal/trace"
	"lvp/internal/version"
	"lvp/internal/vm"
)

func main() {
	var (
		benchName   = flag.String("bench", "", "benchmark name (see -list)")
		target      = flag.String("target", "ppc", "codegen target: ppc or axp")
		scale       = flag.Int("scale", 1, "run-length multiplier")
		out         = flag.String("o", "", "output file (default <bench>.<target>.vlt)")
		list        = flag.Bool("list", false, "list benchmarks and exit")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("tracegen"))
		return
	}

	if *list {
		for _, b := range bench.All() {
			fmt.Printf("%-10s %s\n", b.Name, b.Description)
		}
		return
	}
	if *benchName == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -bench is required (use -list)")
		os.Exit(2)
	}
	tg, err := prog.TargetByName(*target)
	if err != nil {
		fatal(err)
	}
	b, err := bench.ByName(*benchName)
	if err != nil {
		fatal(err)
	}
	p, err := b.Build(tg, *scale)
	if err != nil {
		fatal(err)
	}
	t, res, err := vm.Run(p, 0)
	if err != nil {
		fatal(err)
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("%s.%s.vlt", *benchName, tg.Name)
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := trace.Write(f, t); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	sum := t.Summarize()
	fmt.Printf("wrote %s: %d instructions, %d loads, %d outputs\n",
		path, sum.Instructions, sum.Loads, len(res.Output))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
