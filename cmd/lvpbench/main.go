// Command lvpbench runs the fixed benchmark-trajectory grid (generation,
// VLT1 codec, annotation, fused streaming pipeline, both timing models)
// and emits the measurements as JSON — the data behind the checked-in
// BENCH_*.json perf baselines. See PERFORMANCE.md for the grid's meaning
// and how to refresh the snapshots.
//
// Usage:
//
//	lvpbench -out BENCH_PR5.json              # full grid, 1s per cell
//	lvpbench -smoke                            # CI sizing, JSON to stdout
//	lvpbench -bench grep -benchtime 2s -out -  # pick workload and duration
//	lvpbench -cpuprofile cpu.pb.gz -out -      # profile the grid cells
//	lvpbench -smoke -compare BENCH_PR10.json   # flag >20% ratio drift
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"lvp/internal/perf"
	"lvp/internal/version"
)

func main() {
	var (
		benchName   = flag.String("bench", "", "workload name (default: first benchmark)")
		scale       = flag.Int("scale", 1, "workload scale")
		benchtime   = flag.String("benchtime", "", `per-cell benchtime, e.g. "1s" or "20x" (default 1s; 2x under -smoke)`)
		smoke       = flag.Bool("smoke", false, "smoke sizing for CI: two iterations per cell")
		out         = flag.String("out", "-", `output file ("-" = stdout)`)
		quiet       = flag.Bool("q", false, "suppress per-cell progress on stderr")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the grid run to this file")
		memprofile  = flag.String("memprofile", "", "write a post-run heap profile to this file")
		compareWith = flag.String("compare", "", "prior BENCH_*.json snapshot: report ratio drift >20% on stderr (informational)")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("lvpbench"))
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	opts := perf.Options{
		Bench: *benchName, Scale: *scale,
		Benchtime: *benchtime, Smoke: *smoke,
	}
	if !*quiet {
		opts.Log = os.Stderr
	}
	rep, err := perf.Run(opts)
	if err != nil {
		fatal(err)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	if *compareWith != "" {
		const threshold = 0.20
		old, err := perf.ReadReport(*compareWith)
		if err != nil {
			// Informational path: a missing or unreadable snapshot must
			// not fail the bench run itself.
			fmt.Fprintln(os.Stderr, "lvpbench: compare:", err)
		} else {
			perf.WriteDrift(os.Stderr, *compareWith, perf.Compare(old, rep, threshold), threshold)
		}
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lvpbench:", err)
	os.Exit(1)
}
