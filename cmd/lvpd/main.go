// Command lvpd is the LVP experiment daemon: it serves the trace → annotate
// → simulate pipeline over HTTP as asynchronous jobs with a bounded queue,
// per-job timeouts, cancellation, NDJSON result streaming, and graceful
// drain on SIGINT/SIGTERM. See SERVING.md for the API.
//
// Usage:
//
//	lvpd -addr :8347
//	lvpd -addr :8347 -queue 32 -runners 4 -job-timeout 10m
//	lvpd -addr :8347 -access-log                     # structured request log
//	lvpd -addr :8347 -trace span,pipeline -trace-out events.jsonl
//
// Results served by lvpd are byte-identical to the same cells computed by
// lvpsim / exp.Suite directly: the daemon runs the same engine behind the
// same single-flight caches, shared across requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lvp/internal/obs"
	"lvp/internal/serve"
	"lvp/internal/version"
)

func main() {
	var (
		addr         = flag.String("addr", ":8347", "listen address")
		queue        = flag.Int("queue", 16, "job queue depth (submissions beyond it get 429)")
		runners      = flag.Int("runners", 2, "jobs executed concurrently")
		workers      = flag.Int("workers", 0, "per-job cell fan-out bound (0 = GOMAXPROCS)")
		jobTimeout   = flag.Duration("job-timeout", 5*time.Minute, "default per-job timeout")
		maxTimeout   = flag.Duration("max-timeout", 30*time.Minute, "cap on client-requested job timeouts")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain bound before jobs are cancelled")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on queue-full rejections")
		maxScale     = flag.Int("max-scale", 8, "largest accepted benchmark scale")
		accessLog    = flag.Bool("access-log", false, "log one structured line per HTTP request on stderr")
		traceFlag    = flag.String("trace", "", "comma-separated trace channels to enable (lvpt,lct,cvu,cache,sim,pipeline,span or 'all')")
		traceOut     = flag.String("trace-out", "", "write trace events (JSONL) to this file (default stderr)")
		flightSpans  = flag.Int("flight-spans", 0, "spans kept per job for /v1/jobs/{id}/timeline (0 = default)")
		showVersion  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("lvpd"))
		return
	}

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	cfg := serve.Config{
		QueueDepth:     *queue,
		Runners:        *runners,
		Workers:        *workers,
		DefaultTimeout: *jobTimeout,
		MaxTimeout:     *maxTimeout,
		RetryAfter:     *retryAfter,
		MaxScale:       *maxScale,
		FlightSpans:    *flightSpans,
	}
	if *accessLog {
		cfg.AccessLog = log
	}
	if *traceFlag != "" {
		mask, err := obs.ParseChannels(*traceFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lvpd: %v\n", err)
			os.Exit(2)
		}
		sink := os.Stderr
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lvpd: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			sink = f
		}
		cfg.Tracer = obs.NewTracer(sink, mask)
	}
	mgr := serve.NewManager(cfg)
	srv := &http.Server{
		Addr:    *addr,
		Handler: serve.NewHandler(mgr),
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Info("lvpd listening", "addr", *addr, "queue", *queue, "runners", *runners)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Error("lvpd server failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, finish queued and in-flight jobs,
	// cancel whatever is left at the deadline.
	log.Info("lvpd draining", "timeout", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := mgr.Shutdown(drainCtx); err != nil {
		log.Warn("lvpd drain deadline hit; in-flight jobs cancelled", "err", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Warn("lvpd http shutdown", "err", err)
	}
	log.Info("lvpd stopped")
}
