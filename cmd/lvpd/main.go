// Command lvpd is the LVP experiment daemon: it serves the trace → annotate
// → simulate pipeline over HTTP as asynchronous jobs with a bounded queue,
// per-job timeouts, cancellation, NDJSON result streaming, and graceful
// drain on SIGINT/SIGTERM. See SERVING.md for the API.
//
// Usage:
//
//	lvpd -addr :8347
//	lvpd -addr :8347 -queue 32 -runners 4 -job-timeout 10m
//	lvpd -addr :8347 -access-log                     # structured request log
//	lvpd -addr :8347 -trace span,pipeline -trace-out events.jsonl
//	lvpd -addr :8347 -store-dir /var/lib/lvpd       # persistent result store
//	lvpd -coordinator -workers host1:8347,host2:8347,host3:8347
//
// Results served by lvpd are byte-identical to the same cells computed by
// lvpsim / exp.Suite directly: the daemon runs the same engine behind the
// same single-flight caches, shared across requests. In -coordinator mode
// cells are dispatched to the worker fleet instead of computed locally, and
// the merged stream keeps the same byte-identity (see SERVING.md,
// "Distributed mode").
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lvp/internal/dist"
	"lvp/internal/obs"
	"lvp/internal/serve"
	"lvp/internal/version"
)

func main() {
	var (
		addr         = flag.String("addr", ":8347", "listen address")
		queue        = flag.Int("queue", 16, "job queue depth (submissions beyond it get 429)")
		runners      = flag.Int("runners", 2, "jobs executed concurrently")
		workers      = flag.String("workers", "", "per-job cell fan-out bound (integer, default GOMAXPROCS); with -coordinator, the comma-separated worker base URLs (host:port or http://host:port)")
		coordinator  = flag.Bool("coordinator", false, "run as fleet coordinator: dispatch cells to the -workers fleet instead of simulating locally")
		cellAttempts = flag.Int("cell-attempts", dist.DefaultAttempts, "coordinator: per-cell attempt cap across workers")
		healthEvery  = flag.Duration("health-interval", dist.DefaultHealthInterval, "coordinator: worker /readyz probe period")
		storeDir     = flag.String("store-dir", "", "persist the content-addressed result store under this directory (survives restarts)")
		storeEntries = flag.Int("store-entries", 0, "in-memory result-store LRU capacity (0 = default; store disabled only when both store flags are unset)")
		tenantRate   = flag.Float64("tenant-rate", 0, "per-tenant job admission rate (jobs/sec via X-Tenant token buckets; 0 = quotas off)")
		tenantBurst  = flag.Int("tenant-burst", 0, "per-tenant admission burst (0 = default)")
		jobTimeout   = flag.Duration("job-timeout", 5*time.Minute, "default per-job timeout")
		maxTimeout   = flag.Duration("max-timeout", 30*time.Minute, "cap on client-requested job timeouts")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain bound before jobs are cancelled")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on queue-full rejections")
		maxScale     = flag.Int("max-scale", 8, "largest accepted benchmark scale")
		accessLog    = flag.Bool("access-log", false, "log one structured line per HTTP request on stderr")
		traceFlag    = flag.String("trace", "", "comma-separated trace channels to enable (lvpt,lct,cvu,cache,sim,pipeline,span or 'all')")
		traceOut     = flag.String("trace-out", "", "write trace events (JSONL) to this file (default stderr)")
		flightSpans  = flag.Int("flight-spans", 0, "spans kept per job for /v1/jobs/{id}/timeline (0 = default)")
		showVersion  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("lvpd"))
		return
	}

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	metrics := obs.NewRegistry()
	cfg := serve.Config{
		QueueDepth:     *queue,
		Runners:        *runners,
		DefaultTimeout: *jobTimeout,
		MaxTimeout:     *maxTimeout,
		RetryAfter:     *retryAfter,
		MaxScale:       *maxScale,
		FlightSpans:    *flightSpans,
		Metrics:        metrics,
		TenantRate:     *tenantRate,
		TenantBurst:    *tenantBurst,
	}

	// -workers is overloaded: an integer fan-out bound on a single node,
	// the fleet address list under -coordinator.
	var workerList []string
	if *coordinator {
		for _, w := range strings.Split(*workers, ",") {
			if w = strings.TrimSpace(w); w != "" {
				workerList = append(workerList, w)
			}
		}
		if len(workerList) == 0 {
			fmt.Fprintln(os.Stderr, "lvpd: -coordinator needs -workers host1,host2,...")
			os.Exit(2)
		}
	} else if *workers != "" {
		n, err := strconv.Atoi(*workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lvpd: -workers %q: want an integer fan-out bound (or -coordinator with worker URLs)\n", *workers)
			os.Exit(2)
		}
		cfg.Workers = n
	}

	if *storeDir != "" || *storeEntries > 0 {
		store, err := dist.NewStore(dist.StoreConfig{
			Entries: *storeEntries,
			Dir:     *storeDir,
			Metrics: metrics,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "lvpd: %v\n", err)
			os.Exit(2)
		}
		cfg.Store = store
	}
	if *accessLog {
		cfg.AccessLog = log
	}
	if *traceFlag != "" {
		mask, err := obs.ParseChannels(*traceFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lvpd: %v\n", err)
			os.Exit(2)
		}
		sink := os.Stderr
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lvpd: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			sink = f
		}
		cfg.Tracer = obs.NewTracer(sink, mask)
	}

	var co *dist.Coordinator
	if *coordinator {
		var err error
		co, err = dist.New(dist.Config{
			Workers:        workerList,
			Attempts:       *cellAttempts,
			HealthInterval: *healthEvery,
			Metrics:        metrics,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "lvpd: %v\n", err)
			os.Exit(2)
		}
		cfg.CellRunner = co.RunCell
		co.Start()
		defer co.Stop()
	}

	mgr := serve.NewManager(cfg)
	srv := &http.Server{
		Addr:    *addr,
		Handler: serve.NewHandler(mgr),
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if co != nil {
			log.Info("lvpd coordinating", "addr", *addr, "workers", workerList, "queue", *queue, "runners", *runners)
		} else {
			log.Info("lvpd listening", "addr", *addr, "queue", *queue, "runners", *runners)
		}
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Error("lvpd server failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, finish queued and in-flight jobs,
	// cancel whatever is left at the deadline.
	log.Info("lvpd draining", "timeout", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := mgr.Shutdown(drainCtx); err != nil {
		log.Warn("lvpd drain deadline hit; in-flight jobs cancelled", "err", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Warn("lvpd http shutdown", "err", err)
	}
	log.Info("lvpd stopped")
}
