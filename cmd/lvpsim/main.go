// Command lvpsim regenerates the tables and figures of "Value Locality and
// Load Value Prediction" (ASPLOS 1996) from the built-in benchmark suite.
//
// Usage:
//
//	lvpsim -exp all            # every table and figure
//	lvpsim -exp fig6 -scale 2  # one experiment at double run length
//	lvpsim -list               # list experiment names
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"lvp/internal/exp"
	"lvp/internal/report"
)

type experiment struct {
	name string
	desc string
	run  func(s *exp.Suite, w io.Writer) error
}

var experiments = []experiment{
	{"table1", "benchmark descriptions and dynamic counts", func(s *exp.Suite, w io.Writer) error {
		r, err := s.Table1()
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}},
	{"fig1", "load value locality, depth 1 and 16, both targets", func(s *exp.Suite, w io.Writer) error {
		r, err := s.Figure1()
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}},
	{"fig2", "PowerPC value locality by data type", func(s *exp.Suite, w io.Writer) error {
		r, err := s.Figure2()
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}},
	{"table2", "LVP unit configurations", func(s *exp.Suite, w io.Writer) error {
		exp.Table2(w)
		return nil
	}},
	{"table3", "LCT hit rates", func(s *exp.Suite, w io.Writer) error {
		r, err := s.Table3()
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}},
	{"table4", "constant identification rates", func(s *exp.Suite, w io.Writer) error {
		r, err := s.Table4()
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}},
	{"table5", "instruction latencies", func(s *exp.Suite, w io.Writer) error {
		exp.Table5(w)
		return nil
	}},
	{"fig6", "base machine model speedups", func(s *exp.Suite, w io.Writer) error {
		r, err := s.Figure6()
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}},
	{"table6", "PowerPC 620+ speedups", func(s *exp.Suite, w io.Writer) error {
		r, err := s.Table6()
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}},
	{"fig7", "load verification latency distribution", func(s *exp.Suite, w io.Writer) error {
		r, err := s.Figure7()
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}},
	{"fig8", "dependency resolution latencies by FU", func(s *exp.Suite, w io.Writer) error {
		r, err := s.Figure8()
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}},
	{"fig9", "L1 bank conflict rates", func(s *exp.Suite, w io.Writer) error {
		r, err := s.Figure9()
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}},
	{"lvptsweep", "ablation: LVPT size vs coverage", func(s *exp.Suite, w io.Writer) error {
		r, err := s.LVPTSweep(nil)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}},
	{"lctsweep", "ablation: LCT counter width", func(s *exp.Suite, w io.Writer) error {
		r, err := s.LCTBitsSweep(nil)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}},
	{"cvusweep", "ablation: CVU capacity", func(s *exp.Suite, w io.Writer) error {
		r, err := s.CVUSweep(nil)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}},
	{"predictors", "extension: stride/context predictors (paper §7)", func(s *exp.Suite, w io.Writer) error {
		r, err := s.PredictorStudy()
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}},
	{"gvl", "extension: general value locality, all results (paper §7)", func(s *exp.Suite, w io.Writer) error {
		r, err := s.GeneralValueLocality()
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}},
	{"pathlvp", "extension: branch-history-indexed LVPT (paper §7)", func(s *exp.Suite, w io.Writer) error {
		r, err := s.PathLVPStudy(nil)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}},
	{"mafablation", "ablation: 21164 blocking vs non-blocking misses", func(s *exp.Suite, w io.Writer) error {
		r, err := s.MAFAblation()
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}},
	{"limits", "limit study: dataflow critical-path speedups", func(s *exp.Suite, w io.Writer) error {
		r, err := s.DataflowLimits()
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}},
	{"machines", "diagnostics: baseline machine behaviour", func(s *exp.Suite, w io.Writer) error {
		r, err := s.Machines()
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}},
	{"resourcesweep", "ablation: which 620 resource binds", func(s *exp.Suite, w io.Writer) error {
		r, err := s.ResourceSweep()
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}},
	{"gvp", "extension: general value prediction on the 620 (paper §7)", func(s *exp.Suite, w io.Writer) error {
		r, err := s.GVPStudy()
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}},
	{"stalls", "diagnostics: 620 dispatch-stall breakdown", func(s *exp.Suite, w io.Writer) error {
		r, err := s.Stalls()
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}},
}

func main() {
	var (
		expFlag = flag.String("exp", "all", "experiment to run (see -list), or comma-separated set, or 'all' / 'paper'")
		scale   = flag.Int("scale", 1, "benchmark run-length multiplier")
		list    = flag.Bool("list", false, "list experiments and exit")
		timing  = flag.Bool("time", false, "print wall time per experiment")
		format  = flag.String("format", "text", "output format: text or csv")
	)
	flag.Parse()
	switch *format {
	case "text":
	case "csv":
		report.ActiveFormat = report.FormatCSV
	default:
		fmt.Fprintf(os.Stderr, "lvpsim: unknown format %q\n", *format)
		os.Exit(2)
	}

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-11s %s\n", e.name, e.desc)
		}
		return
	}

	want := map[string]bool{}
	switch *expFlag {
	case "all":
		for _, e := range experiments {
			want[e.name] = true
		}
	case "paper":
		for _, e := range experiments {
			switch {
			case strings.Contains(e.name, "sweep"),
				strings.Contains(e.name, "ablation"),
				e.name == "predictors", e.name == "gvl", e.name == "pathlvp",
				e.name == "limits", e.name == "machines", e.name == "gvp",
				e.name == "stalls":
				// extensions: only under -exp all
			default:
				want[e.name] = true
			}
		}
	default:
		for _, name := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}

	s := exp.NewSuite(*scale)
	ran := 0
	for _, e := range experiments {
		if !want[e.name] {
			continue
		}
		start := time.Now()
		if err := e.run(s, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "lvpsim: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "[%s: %v]\n", e.name, time.Since(start).Round(time.Millisecond))
		}
		ran++
		delete(want, e.name)
	}
	for name := range want {
		fmt.Fprintf(os.Stderr, "lvpsim: unknown experiment %q (use -list)\n", name)
		os.Exit(2)
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "lvpsim: nothing to run (use -list)")
		os.Exit(2)
	}
}
