// Command lvpsim regenerates the tables and figures of "Value Locality and
// Load Value Prediction" (ASPLOS 1996) from the built-in benchmark suite.
//
// Usage:
//
//	lvpsim -exp all            # every table and figure
//	lvpsim -exp all -parallel 8  # same output, 8 experiment workers
//	lvpsim -exp fig6 -scale 2  # one experiment at double run length
//	lvpsim -exp fig6 -stream   # simulation cells stream in bounded memory
//	lvpsim -exp zoosweep -zoo stride,two-level  # restrict the predictor zoo
//	lvpsim -list               # list experiment names
//	lvpsim -list-zoo           # list predictor-zoo families
//
// Experiment cells (benchmark × target × config × machine) run on a bounded
// worker pool; results are merged deterministically, so the output is
// byte-identical for every -parallel value.
//
// Observability (see OBSERVABILITY.md):
//
//	lvpsim -exp all -metrics out.json      # JSON metrics snapshot
//	lvpsim -exp all -progress              # live completion line on stderr
//	lvpsim -exp table3 -trace lvpt,cvu -trace-out events.jsonl
//	lvpsim -exp all -pprof localhost:6060  # pprof + /debug/vars while running
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"lvp/internal/exp"
	"lvp/internal/lvp"
	"lvp/internal/obs"
	"lvp/internal/report"
	"lvp/internal/version"
)

func main() {
	var (
		expFlag     = flag.String("exp", "all", "experiment to run (see -list), or comma-separated set, or 'all' / 'paper'")
		scale       = flag.Int("scale", 1, "benchmark run-length multiplier")
		parallel    = flag.Int("parallel", 0, "experiment worker-pool size (0 = GOMAXPROCS, 1 = serial); output is identical for every value")
		stream      = flag.Bool("stream", false, "run simulation cells as streaming gen→annotate→sim pipelines (bounded memory); output is identical")
		zoo         = flag.String("zoo", "", "comma-separated predictor families for the zoosweep experiment (default: every registered family; see -list-zoo)")
		list        = flag.Bool("list", false, "list experiments and exit")
		listZoo     = flag.Bool("list-zoo", false, "list predictor-zoo families and exit")
		timing      = flag.Bool("time", false, "print wall time per experiment")
		format      = flag.String("format", "text", "output format: text or csv")
		metrics     = flag.String("metrics", "", "write a JSON metrics snapshot to this file at exit")
		traceFlag   = flag.String("trace", "", "comma-separated trace channels to enable (lvpt,lct,cvu,cache,sim,pipeline,span or 'all')")
		traceOut    = flag.String("trace-out", "", "write trace events (JSONL) to this file (default stderr)")
		progress    = flag.Bool("progress", false, "print a live cell-completion line on stderr")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof and expvar on this address while running")
		timeout     = flag.Duration("timeout", 0, "abort the run after this wall-clock budget (0 = no limit)")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("lvpsim"))
		return
	}
	switch *format {
	case "text":
	case "csv":
		report.ActiveFormat = report.FormatCSV
	default:
		fmt.Fprintf(os.Stderr, "lvpsim: unknown format %q\n", *format)
		os.Exit(2)
	}

	experiments := exp.Experiments()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-11s %s\n", e.Name, e.Desc)
		}
		return
	}
	if *listZoo {
		for _, f := range lvp.Families() {
			fmt.Printf("%-13s %s\n", f.Name, f.Desc)
		}
		return
	}

	want := map[string]bool{}
	switch *expFlag {
	case "all":
		for _, e := range experiments {
			want[e.Name] = true
		}
	case "paper":
		for _, e := range experiments {
			if e.Paper {
				want[e.Name] = true
			}
		}
	default:
		for _, name := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}

	s := exp.NewSuiteParallel(*scale, *parallel)
	s.Stream = *stream
	if *zoo != "" {
		for _, name := range strings.Split(*zoo, ",") {
			name = strings.TrimSpace(name)
			if _, err := lvp.FamilyByName(name); err != nil {
				fmt.Fprintf(os.Stderr, "lvpsim: %v (use -list-zoo)\n", err)
				os.Exit(2)
			}
			s.ZooFamilies = append(s.ZooFamilies, name)
		}
	}

	// Wall-clock budget: run every experiment under a deadline context; on
	// expiry the engine stops at the next cell boundary and we exit non-zero.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Structured event tracing: parse channels, open the sink. When the
	// span channel is enabled, install a trace scope so experiment and
	// engine-phase spans stream to the sink as JSONL "span" events.
	if *traceFlag != "" {
		mask, err := obs.ParseChannels(*traceFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lvpsim: %v\n", err)
			os.Exit(2)
		}
		sink := os.Stderr
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lvpsim: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			sink = f
		}
		s.Tracer = obs.NewTracer(sink, mask)
		ctx = obs.WithTrace(ctx, obs.NewTraceID(), s.Tracer, nil)
	}
	s = s.WithContext(ctx)

	if *pprofAddr != "" {
		s.Metrics.Publish("lvp")
		obs.StartDebugServer(*pprofAddr, "lvpsim")
	}

	start := time.Now()
	stopProgress := func() {}
	if *progress {
		stopProgress = startProgress(s, start)
	}

	ran := 0
	for _, e := range experiments {
		if !want[e.Name] {
			continue
		}
		expStart := time.Now()
		ectx, endExp := obs.StartSpan(ctx, "exp", slog.String("name", e.Name))
		err := e.Run(s.WithContext(ectx), os.Stdout)
		endExp()
		s.Metrics.Timer("exp." + e.Name).Observe(time.Since(expStart))
		if err != nil {
			stopProgress()
			if errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintf(os.Stderr, "lvpsim: %s: run cancelled: -timeout %v exceeded\n", e.Name, *timeout)
			} else {
				fmt.Fprintf(os.Stderr, "lvpsim: %s: %v\n", e.Name, err)
			}
			os.Exit(1)
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "[%s: %v]\n", e.Name, time.Since(expStart).Round(time.Millisecond))
		}
		ran++
		delete(want, e.Name)
	}
	stopProgress()
	for name := range want {
		fmt.Fprintf(os.Stderr, "lvpsim: unknown experiment %q (use -list)\n", name)
		os.Exit(2)
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "lvpsim: nothing to run (use -list)")
		os.Exit(2)
	}

	// Always report run totals, so long runs end with a measurement even
	// without -progress or -metrics.
	traces, anns, sims := cellCounts(s)
	fmt.Fprintf(os.Stderr, "lvpsim: %d experiments, %d cells (%d traces, %d annotations, %d simulations) in %v\n",
		ran, traces+anns+sims, traces, anns, sims, time.Since(start).Round(time.Millisecond))

	if *metrics != "" {
		s.FinalizeMetrics()
		f, err := os.Create(*metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lvpsim: %v\n", err)
			os.Exit(1)
		}
		if err := s.Metrics.WriteJSON(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lvpsim: writing %s: %v\n", *metrics, err)
			os.Exit(1)
		}
	}
}

// cellCounts reads the completed-build counters from the suite registry.
func cellCounts(s *exp.Suite) (traces, anns, sims int64) {
	traces = s.Metrics.Counter("progress.trace").Value()
	anns = s.Metrics.Counter("progress.annotate").Value()
	sims = s.Metrics.Counter("progress.sim620").Value() +
		s.Metrics.Counter("progress.sim21164").Value()
	return traces, anns, sims
}

// startProgress launches a goroutine refreshing one stderr status line with
// live cell-completion counts; the returned function stops it and clears
// the line.
func startProgress(s *exp.Suite, start time.Time) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(200 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				// Clear the status line so the summary prints clean.
				fmt.Fprintf(os.Stderr, "\r%*s\r", 79, "")
				return
			case <-tick.C:
				traces, anns, sims := cellCounts(s)
				busy := s.Metrics.Gauge("pool.busy").Value()
				fmt.Fprintf(os.Stderr,
					"\rlvpsim: traces %d · annotations %d · simulations %d · %d busy · %v ",
					traces, anns, sims, busy,
					time.Since(start).Round(time.Second))
			}
		}
	}()
	var once bool
	return func() {
		if once {
			return
		}
		once = true
		close(done)
		<-finished
	}
}
