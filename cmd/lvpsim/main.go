// Command lvpsim regenerates the tables and figures of "Value Locality and
// Load Value Prediction" (ASPLOS 1996) from the built-in benchmark suite.
//
// Usage:
//
//	lvpsim -exp all            # every table and figure
//	lvpsim -exp all -parallel 8  # same output, 8 experiment workers
//	lvpsim -exp fig6 -scale 2  # one experiment at double run length
//	lvpsim -list               # list experiment names
//
// Experiment cells (benchmark × target × config × machine) run on a bounded
// worker pool; results are merged deterministically, so the output is
// byte-identical for every -parallel value.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lvp/internal/exp"
	"lvp/internal/report"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "experiment to run (see -list), or comma-separated set, or 'all' / 'paper'")
		scale    = flag.Int("scale", 1, "benchmark run-length multiplier")
		parallel = flag.Int("parallel", 0, "experiment worker-pool size (0 = GOMAXPROCS, 1 = serial); output is identical for every value")
		list     = flag.Bool("list", false, "list experiments and exit")
		timing   = flag.Bool("time", false, "print wall time per experiment")
		format   = flag.String("format", "text", "output format: text or csv")
	)
	flag.Parse()
	switch *format {
	case "text":
	case "csv":
		report.ActiveFormat = report.FormatCSV
	default:
		fmt.Fprintf(os.Stderr, "lvpsim: unknown format %q\n", *format)
		os.Exit(2)
	}

	experiments := exp.Experiments()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-11s %s\n", e.Name, e.Desc)
		}
		return
	}

	want := map[string]bool{}
	switch *expFlag {
	case "all":
		for _, e := range experiments {
			want[e.Name] = true
		}
	case "paper":
		for _, e := range experiments {
			if e.Paper {
				want[e.Name] = true
			}
		}
	default:
		for _, name := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}

	s := exp.NewSuiteParallel(*scale, *parallel)
	ran := 0
	for _, e := range experiments {
		if !want[e.Name] {
			continue
		}
		start := time.Now()
		if err := e.Run(s, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "lvpsim: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "[%s: %v]\n", e.Name, time.Since(start).Round(time.Millisecond))
		}
		ran++
		delete(want, e.Name)
	}
	for name := range want {
		fmt.Fprintf(os.Stderr, "lvpsim: unknown experiment %q (use -list)\n", name)
		os.Exit(2)
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "lvpsim: nothing to run (use -list)")
		os.Exit(2)
	}
}
