// Command traceinfo summarises a trace file (VLT1 or VLT2, auto-detected):
// dynamic instruction mix, load-class breakdown, value locality at depths 1
// and 16, and LVP unit behaviour under the paper's configurations. VLT2
// files additionally get a format section: block count, on-wire vs decoded
// bytes, and the trace.v2.* decode counters.
//
// The file is processed in one streaming pass: every table's accumulator
// consumes each record as it is decoded, so summarising a multi-gigabyte
// trace needs O(1) memory.
//
// Usage:
//
//	traceinfo grep.ppc.vlt
//	traceinfo grep.ppc.vlt2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lvp/internal/isa"
	"lvp/internal/locality"
	"lvp/internal/lvp"
	"lvp/internal/obs"
	"lvp/internal/report"
	"lvp/internal/stats"
	"lvp/internal/trace"
	"lvp/internal/version"
)

func main() {
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("traceinfo"))
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceinfo <file.vlt>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	sr, err := trace.OpenFile(f)
	if err != nil {
		fatal(err)
	}
	reg := obs.NewRegistry()
	type metered interface{ SetMetrics(*obs.Registry) }
	if m, ok := sr.(metered); ok {
		m.SetMetrics(reg)
	}

	// One pass, every accumulator fed per record.
	z := trace.NewSummarizer(sr.Name(), sr.Target())
	meter := locality.NewMeter(locality.DefaultEntries, 1, 16)
	anns := make([]*lvp.Annotator, len(lvp.Configs))
	for i, cfg := range lvp.Configs {
		if anns[i], err = lvp.NewAnnotator(cfg, nil); err != nil {
			fatal(err)
		}
	}
	for {
		r, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		z.Add(r)
		meter.Add(r)
		for _, a := range anns {
			a.Record(r)
		}
	}
	sum := z.Summary()

	mix := report.Table{
		Title:   fmt.Sprintf("Trace %s/%s", sr.Name(), sr.Target()),
		Columns: []string{"Metric", "Value"},
	}
	mix.AddRow("instructions", sum.Instructions)
	mix.AddRow("loads", sum.Loads)
	mix.AddRow("stores", sum.Stores)
	mix.AddRow("branches", sum.Branches)
	mix.AddRow("cond taken rate", stats.Pct(sum.TakenRate, 1))
	for c := isa.LoadClass(1); c < isa.NumLoadClasses; c++ {
		mix.AddRow("loads: "+c.String(), sum.LoadsByClass[c])
	}
	mix.Render(os.Stdout)

	// VLT2 files carry a block index; surface its shape and the decode
	// counters the reader accumulated during the pass.
	if ir, ok := sr.(*trace.IndexedReader); ok {
		snap := reg.Snapshot()
		ft := report.Table{
			Title:   "VLT2 layout",
			Columns: []string{"Metric", "Value"},
		}
		ft.AddRow("blocks", ir.Blocks())
		ft.AddRow("block bytes (wire)", ir.WireBytes())
		ft.AddRow("bytes decoded (raw)", snap.Counters["trace.v2.bytes.raw"])
		ft.AddRow("bytes read (compressed)", snap.Counters["trace.v2.bytes.compressed"])
		ft.AddRow("records decoded", snap.Counters["trace.v2.records"])
		ft.Render(os.Stdout)
	}

	lt := report.Table{
		Title:   "Value locality",
		Columns: []string{"Depth", "Overall", "FP", "Int", "InstAddr", "DataAddr"},
	}
	for _, r := range meter.Results() {
		lt.AddRow(r.Depth,
			stats.Pct(r.Overall.Percent()/100, 1),
			stats.Pct(r.ByClass[isa.LoadFPData].Percent()/100, 1),
			stats.Pct(r.ByClass[isa.LoadIntData].Percent()/100, 1),
			stats.Pct(r.ByClass[isa.LoadInstAddr].Percent()/100, 1),
			stats.Pct(r.ByClass[isa.LoadDataAddr].Percent()/100, 1))
	}
	lt.Render(os.Stdout)

	ut := report.Table{
		Title:   "LVP unit behaviour",
		Columns: []string{"Config", "Coverage", "Accuracy", "Constants"},
	}
	for i, cfg := range lvp.Configs {
		st := anns[i].Stats()
		ut.AddRow(cfg.Name, stats.Pct(st.Coverage(), 1),
			stats.Pct(st.Accuracy(), 1), stats.Pct(st.ConstantRate(), 1))
	}
	ut.Render(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceinfo:", err)
	os.Exit(1)
}
