// Command traceinfo summarises a VLT1 trace file: dynamic instruction mix,
// load-class breakdown, value locality at depths 1 and 16, and LVP unit
// behaviour under the paper's configurations.
//
// Usage:
//
//	traceinfo grep.ppc.vlt
package main

import (
	"flag"
	"fmt"
	"os"

	"lvp/internal/isa"
	"lvp/internal/locality"
	"lvp/internal/lvp"
	"lvp/internal/report"
	"lvp/internal/stats"
	"lvp/internal/trace"
	"lvp/internal/version"
)

func main() {
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("traceinfo"))
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceinfo <file.vlt>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	t, err := trace.Read(f)
	if err != nil {
		fatal(err)
	}
	sum := t.Summarize()

	mix := report.Table{
		Title:   fmt.Sprintf("Trace %s/%s", t.Name, t.Target),
		Columns: []string{"Metric", "Value"},
	}
	mix.AddRow("instructions", sum.Instructions)
	mix.AddRow("loads", sum.Loads)
	mix.AddRow("stores", sum.Stores)
	mix.AddRow("branches", sum.Branches)
	mix.AddRow("cond taken rate", stats.Pct(sum.TakenRate, 1))
	for c := isa.LoadClass(1); c < isa.NumLoadClasses; c++ {
		mix.AddRow("loads: "+c.String(), sum.LoadsByClass[c])
	}
	mix.Render(os.Stdout)

	loc := locality.Measure(t, locality.DefaultEntries, 1, 16)
	lt := report.Table{
		Title:   "Value locality",
		Columns: []string{"Depth", "Overall", "FP", "Int", "InstAddr", "DataAddr"},
	}
	for _, r := range loc {
		lt.AddRow(r.Depth,
			stats.Pct(r.Overall.Percent()/100, 1),
			stats.Pct(r.ByClass[isa.LoadFPData].Percent()/100, 1),
			stats.Pct(r.ByClass[isa.LoadIntData].Percent()/100, 1),
			stats.Pct(r.ByClass[isa.LoadInstAddr].Percent()/100, 1),
			stats.Pct(r.ByClass[isa.LoadDataAddr].Percent()/100, 1))
	}
	lt.Render(os.Stdout)

	ut := report.Table{
		Title:   "LVP unit behaviour",
		Columns: []string{"Config", "Coverage", "Accuracy", "Constants"},
	}
	for _, cfg := range lvp.Configs {
		_, st, err := lvp.Annotate(t, cfg)
		if err != nil {
			fatal(err)
		}
		ut.AddRow(cfg.Name, stats.Pct(st.Coverage(), 1),
			stats.Pct(st.Accuracy(), 1), stats.Pct(st.ConstantRate(), 1))
	}
	ut.Render(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceinfo:", err)
	os.Exit(1)
}
