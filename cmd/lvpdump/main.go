// Command lvpdump disassembles a built benchmark (or an assembled .s file):
// the code listing with labels resolved, plus the data-symbol map. A
// debugging aid for workload authors. With -trace it instead dumps the
// records of a trace file (VLT1 or VLT2, auto-detected) through the
// streaming reader, so arbitrarily large traces dump in O(1) memory; on
// VLT2 files -seek jumps straight to record N through the block index
// instead of decoding up to it.
//
// Usage:
//
//	lvpdump -bench grep -target ppc | less
//	lvpdump -asm prog.s
//	lvpdump -trace grep.ppc.vlt | head
//	lvpdump -trace grep.ppc.vlt2 -seek 1000000 -n 20
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"lvp/internal/asm"
	"lvp/internal/bench"
	"lvp/internal/isa"
	"lvp/internal/prog"
	"lvp/internal/trace"
	"lvp/internal/version"
)

func main() {
	var (
		benchName   = flag.String("bench", "", "benchmark to dump")
		asmFile     = flag.String("asm", "", "assembly file to dump instead")
		traceFile   = flag.String("trace", "", "trace file to dump records from (vlt1 or vlt2, streaming)")
		seek        = flag.Uint64("seek", 0, "start dumping at this record (O(1) on vlt2 files)")
		count       = flag.Int64("n", -1, "dump at most this many records (-1 = all)")
		target      = flag.String("target", "ppc", "codegen target: ppc or axp")
		scale       = flag.Int("scale", 1, "benchmark scale")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("lvpdump"))
		return
	}

	if *traceFile != "" {
		if err := dumpTrace(*traceFile, *seek, *count); err != nil {
			fatal(err)
		}
		return
	}

	tg, err := prog.TargetByName(*target)
	if err != nil {
		fatal(err)
	}
	var p *prog.Program
	switch {
	case *asmFile != "":
		src, err := os.ReadFile(*asmFile)
		if err != nil {
			fatal(err)
		}
		if p, err = asm.Assemble(*asmFile, string(src), tg); err != nil {
			fatal(err)
		}
	case *benchName != "":
		b, err := bench.ByName(*benchName)
		if err != nil {
			fatal(err)
		}
		if p, err = b.Build(tg, *scale); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "lvpdump: need -bench or -asm")
		os.Exit(2)
	}

	// Invert the label map for listing.
	labelsAt := map[uint64][]string{}
	for name, pc := range p.Funcs {
		labelsAt[pc] = append(labelsAt[pc], name)
	}
	for _, names := range labelsAt {
		sort.Strings(names)
	}

	fmt.Printf("; program %s (%s target), %d instructions, %d data bytes\n\n",
		p.Name, p.Target.Name, len(p.Code), dataSize(p))
	for i, in := range p.Code {
		pc := prog.CodeBase + uint64(i)*isa.InstBytes
		for _, l := range labelsAt[pc] {
			fmt.Printf("%s:\n", l)
		}
		fmt.Printf("  %06x:  %s\n", pc, in.String())
	}

	fmt.Printf("\n; data symbols\n")
	type sym struct {
		name string
		addr uint64
	}
	var syms []sym
	for name, addr := range p.Symbols {
		syms = append(syms, sym{name, addr})
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].addr < syms[j].addr })
	for _, s := range syms {
		fmt.Printf("  %06x  %s\n", s.addr, s.name)
	}
}

// dumpTrace streams the records of a trace file to stdout, one line per
// record, without materializing the trace. seek skips to that record first
// — via the block index on VLT2 files, by decode-and-discard on VLT1 — and
// n bounds how many records print (-1 = to the end).
func dumpTrace(path string, seek uint64, n int64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sr, err := trace.OpenFile(f)
	if err != nil {
		return err
	}
	fmt.Printf("; trace %s/%s, %d records\n", sr.Name(), sr.Target(), sr.Count())
	if seek > 0 {
		if ir, ok := sr.(*trace.IndexedReader); ok {
			if err := ir.SeekRecord(seek); err != nil {
				return err
			}
		} else {
			var buf [512]trace.Record
			for skipped := uint64(0); skipped < seek; {
				k, err := sr.NextBatch(buf[:min(uint64(len(buf)), seek-skipped)])
				skipped += uint64(k)
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
			}
		}
	}
	for i := int64(0); n < 0 || i < n; i++ {
		r, err := sr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		fmt.Printf("%10d  %06x  %-28s", uint64(i)+seek, r.PC, r.Inst().String())
		switch {
		case r.IsLoad():
			fmt.Printf("  addr=%#x val=%#x", r.Addr, r.Value)
		case r.IsStore():
			fmt.Printf("  addr=%#x val=%#x", r.Addr, r.Value)
		case r.IsBranch():
			fmt.Printf("  taken=%t targ=%06x", r.Taken, r.Targ)
		}
		fmt.Println()
	}
	return nil
}

func dataSize(p *prog.Program) int {
	n := 0
	for _, seg := range p.Data {
		n += len(seg)
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lvpdump:", err)
	os.Exit(1)
}
