// Command lvpdump disassembles a built benchmark (or an assembled .s file):
// the code listing with labels resolved, plus the data-symbol map. A
// debugging aid for workload authors.
//
// Usage:
//
//	lvpdump -bench grep -target ppc | less
//	lvpdump -asm prog.s
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"lvp/internal/asm"
	"lvp/internal/bench"
	"lvp/internal/isa"
	"lvp/internal/prog"
	"lvp/internal/version"
)

func main() {
	var (
		benchName   = flag.String("bench", "", "benchmark to dump")
		asmFile     = flag.String("asm", "", "assembly file to dump instead")
		target      = flag.String("target", "ppc", "codegen target: ppc or axp")
		scale       = flag.Int("scale", 1, "benchmark scale")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("lvpdump"))
		return
	}

	tg, err := prog.TargetByName(*target)
	if err != nil {
		fatal(err)
	}
	var p *prog.Program
	switch {
	case *asmFile != "":
		src, err := os.ReadFile(*asmFile)
		if err != nil {
			fatal(err)
		}
		if p, err = asm.Assemble(*asmFile, string(src), tg); err != nil {
			fatal(err)
		}
	case *benchName != "":
		b, err := bench.ByName(*benchName)
		if err != nil {
			fatal(err)
		}
		if p, err = b.Build(tg, *scale); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "lvpdump: need -bench or -asm")
		os.Exit(2)
	}

	// Invert the label map for listing.
	labelsAt := map[uint64][]string{}
	for name, pc := range p.Funcs {
		labelsAt[pc] = append(labelsAt[pc], name)
	}
	for _, names := range labelsAt {
		sort.Strings(names)
	}

	fmt.Printf("; program %s (%s target), %d instructions, %d data bytes\n\n",
		p.Name, p.Target.Name, len(p.Code), dataSize(p))
	for i, in := range p.Code {
		pc := prog.CodeBase + uint64(i)*isa.InstBytes
		for _, l := range labelsAt[pc] {
			fmt.Printf("%s:\n", l)
		}
		fmt.Printf("  %06x:  %s\n", pc, in.String())
	}

	fmt.Printf("\n; data symbols\n")
	type sym struct {
		name string
		addr uint64
	}
	var syms []sym
	for name, addr := range p.Symbols {
		syms = append(syms, sym{name, addr})
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].addr < syms[j].addr })
	for _, s := range syms {
		fmt.Printf("  %06x  %s\n", s.addr, s.name)
	}
}

func dataSize(p *prog.Program) int {
	n := 0
	for _, seg := range p.Data {
		n += len(seg)
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lvpdump:", err)
	os.Exit(1)
}
