// Command vltconv converts trace files between the VLT1 and VLT2 formats
// (and between VLT2 block codecs), streaming record by record so traces of
// any size convert in bounded memory. The input format is auto-detected
// from its magic bytes; -verify re-reads both files afterwards and checks
// record-for-record equality.
//
// Usage:
//
//	vltconv -o grep.ppc.vlt2 grep.ppc.vlt                 # VLT1 → VLT2 (raw blocks)
//	vltconv -codec flate -o grep.small.vlt2 grep.ppc.vlt  # compressed blocks
//	vltconv -format vlt1 -o grep.ppc.vlt grep.ppc.vlt2    # back-convert
//	vltconv -verify -codec fixed -o g.vlt2 grep.ppc.vlt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"lvp/internal/trace"
	"lvp/internal/version"
)

func main() {
	var (
		out         = flag.String("o", "", "output file (required)")
		formatName  = flag.String("format", "vlt2", "output format: vlt1 or vlt2")
		codecName   = flag.String("codec", "raw", "vlt2 block codec: raw, flate, fixed, or fixed-flate")
		blockRecs   = flag.Int("block-records", 0, "vlt2 records per block (0 = default)")
		verify      = flag.Bool("verify", false, "re-read input and output and verify record equality")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("vltconv"))
		return
	}
	if flag.NArg() != 1 || *out == "" {
		fmt.Fprintln(os.Stderr, "usage: vltconv -o <out> [-format vlt1|vlt2] [-codec ...] <in>")
		os.Exit(2)
	}
	in := flag.Arg(0)
	format, err := trace.FormatByName(*formatName)
	if err != nil {
		fatal(err)
	}
	codec, err := trace.BlockCodecByName(*codecName)
	if err != nil {
		fatal(err)
	}
	if format == trace.FormatVLT1 && (codec != trace.CodecRaw || *blockRecs != 0) {
		fatal(fmt.Errorf("-codec and -block-records apply only to -format vlt2"))
	}

	n, err := convert(in, *out, format, codec, *blockRecs)
	if err != nil {
		fatal(err)
	}
	inSize, outSize := fileSize(in), fileSize(*out)
	fmt.Printf("wrote %s: %d records, %d → %d bytes (%.1f%%)\n",
		*out, n, inSize, outSize, 100*float64(outSize)/float64(max(inSize, 1)))

	if *verify {
		if err := verifyEqual(in, *out); err != nil {
			fatal(err)
		}
		fmt.Println("verify: records identical")
	}
}

// convert streams every record of in into a new file at out in the
// requested format, returning the record count.
func convert(in, out string, format trace.Format, codec trace.BlockCodec, blockRecs int) (uint64, error) {
	fi, err := os.Open(in)
	if err != nil {
		return 0, err
	}
	defer fi.Close()
	src, err := trace.OpenFile(fi)
	if err != nil {
		return 0, err
	}
	fo, err := os.Create(out)
	if err != nil {
		return 0, err
	}
	var enc trace.Encoder
	if format == trace.FormatVLT2 {
		enc, err = trace.NewWriter2Opts(fo, src.Name(), src.Target(),
			trace.Writer2Options{Codec: codec, BlockRecords: blockRecs})
	} else {
		// VLT1 wants its record count up front when known; the indexed
		// VLT2 reader always knows it, a sequential VLT1 source knows it
		// from its own header. Fall back to backpatching otherwise.
		if n := src.Count(); n > 0 {
			enc, err = trace.NewEncoder(fo, format, src.Name(), src.Target(), int64(n))
		} else {
			enc, err = trace.NewEncoder(fo, format, src.Name(), src.Target(), -1)
		}
	}
	if err != nil {
		fo.Close()
		return 0, err
	}
	buf := make([]trace.Record, 4096)
	for {
		k, err := src.NextBatch(buf)
		for i := 0; i < k; i++ {
			if werr := enc.WriteRecord(&buf[i]); werr != nil {
				fo.Close()
				return 0, werr
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			fo.Close()
			return 0, err
		}
	}
	if err := enc.Close(); err != nil {
		fo.Close()
		return 0, err
	}
	return enc.Count(), fo.Close()
}

// verifyEqual streams both files in lockstep and reports the first
// divergence.
func verifyEqual(a, b string) error {
	fa, err := os.Open(a)
	if err != nil {
		return err
	}
	defer fa.Close()
	fb, err := os.Open(b)
	if err != nil {
		return err
	}
	defer fb.Close()
	da, err := trace.Open(bufio.NewReaderSize(fa, 1<<16))
	if err != nil {
		return err
	}
	db, err := trace.Open(bufio.NewReaderSize(fb, 1<<16))
	if err != nil {
		return err
	}
	var n uint64
	for {
		ra, ea := da.Next()
		rb, eb := db.Next()
		if ea == io.EOF || eb == io.EOF {
			if ea != eb {
				return fmt.Errorf("verify: record counts differ at %d (%v vs %v)", n, ea, eb)
			}
			return nil
		}
		if ea != nil {
			return ea
		}
		if eb != nil {
			return eb
		}
		if *ra != *rb {
			return fmt.Errorf("verify: record %d differs:\n  %s: %+v\n  %s: %+v", n, a, *ra, b, *rb)
		}
		n++
	}
}

func fileSize(path string) int64 {
	st, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return st.Size()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vltconv:", err)
	os.Exit(1)
}
