// Command lvpasm assembles a VLR assembly file, executes it, and reports its
// outputs plus (optionally) its value-locality and LVP behaviour — the
// fastest route from a hand-written microbenchmark to the paper's pipeline.
//
// Usage:
//
//	lvpasm prog.s                    # assemble + run, print OUT values
//	lvpasm -target axp -analyze prog.s
//	lvpasm -trace prog.vlt prog.s    # also write the binary trace
package main

import (
	"flag"
	"fmt"
	"os"

	"lvp/internal/asm"
	"lvp/internal/locality"
	"lvp/internal/lvp"
	"lvp/internal/ppc620"
	"lvp/internal/prog"
	"lvp/internal/trace"
	"lvp/internal/version"
	"lvp/internal/vm"
)

func main() {
	var (
		target      = flag.String("target", "ppc", "codegen target: ppc or axp")
		analyze     = flag.Bool("analyze", false, "report locality and LVP behaviour")
		traceOut    = flag.String("trace", "", "write the binary trace to this file")
		maxSteps    = flag.Int("maxsteps", 50_000_000, "execution step budget")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("lvpasm"))
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lvpasm [flags] <prog.s>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	tg, err := prog.TargetByName(*target)
	if err != nil {
		fatal(err)
	}
	p, err := asm.Assemble(path, string(src), tg)
	if err != nil {
		fatal(err)
	}
	tr, res, err := vm.Run(p, *maxSteps)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d instructions executed\n", path, res.Steps)
	for i, v := range res.Output {
		fmt.Printf("out[%d] = %d (%#x)\n", i, int64(v), v)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := trace.Write(f, tr); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}

	if *analyze {
		for _, r := range locality.Measure(tr, locality.DefaultEntries, 1, 16) {
			fmt.Printf("value locality, depth %2d: %5.1f%%\n", r.Depth, r.Overall.Percent())
		}
		base := ppc620.Simulate(tr, nil, ppc620.Config620(), "")
		for _, cfg := range lvp.Configs {
			ann, st, err := lvp.Annotate(tr, cfg)
			if err != nil {
				fatal(err)
			}
			sim := ppc620.Simulate(tr, ann, ppc620.Config620(), cfg.Name)
			fmt.Printf("%-9s coverage %5.1f%%  constants %5.1f%%  620 speedup %.3f\n",
				cfg.Name, 100*st.Coverage(), 100*st.ConstantRate(),
				float64(base.Cycles)/float64(sim.Cycles))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lvpasm:", err)
	os.Exit(1)
}
