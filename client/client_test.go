package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"lvp/internal/exp"
	"lvp/internal/serve"
)

// fastRetry keeps test backoff in the microsecond range.
var fastRetry = RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}

// newTestClient wires a client to a test server with fast retries.
func newTestClient(t *testing.T, srv *httptest.Server) *Client {
	t.Helper()
	c, err := New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c.WithHTTPClient(srv.Client()).WithRetry(fastRetry)
}

// TestSubmitRetriesQueueFull models lvpd backpressure: two 429s with
// Retry-After, then acceptance. The client must retry through them.
func TestSubmitRetriesQueueFull(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "serve: job queue full"})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(JobStatus{ID: "job-000001", State: StateQueued})
	}))
	defer srv.Close()

	st, err := newTestClient(t, srv).Submit(context.Background(), JobSpec{Benchmarks: []string{"quick"}})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "job-000001" {
		t.Fatalf("ID = %q", st.ID)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want 3 (two rejections + success)", n)
	}
}

// TestSubmitExhaustsRetries pins the give-up path: a permanently full
// queue fails after exactly MaxAttempts tries with the last error wrapped.
func TestSubmitExhaustsRetries(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(map[string]string{"error": "serve: job queue full"})
	}))
	defer srv.Close()

	_, err := newTestClient(t, srv).Submit(context.Background(), JobSpec{Benchmarks: []string{"quick"}})
	if err == nil {
		t.Fatal("submit succeeded against a permanently full queue")
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want wrapped 429 StatusError", err)
	}
	if n := calls.Load(); n != int64(fastRetry.MaxAttempts) {
		t.Fatalf("server saw %d calls, want %d", n, fastRetry.MaxAttempts)
	}
}

// TestBadRequestNotRetried pins that 400s fail immediately: retrying an
// invalid spec can never succeed.
func TestBadRequestNotRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "serve: job needs at least one benchmark"})
	}))
	defer srv.Close()

	_, err := newTestClient(t, srv).Submit(context.Background(), JobSpec{})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("400 retried: %d calls", n)
	}
}

// TestRetryOnServerFlap models a restarting daemon: 503, then healthy.
func TestRetryOnServerFlap(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode([]JobStatus{})
	}))
	defer srv.Close()

	if _, err := newTestClient(t, srv).List(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("server saw %d calls, want 2", n)
	}
}

// TestRetryHonorsContext checks cancellation wins over pending backoff.
func TestRetryHonorsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30") // force a long computed delay
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := newTestClient(t, srv).Submit(ctx, JobSpec{Benchmarks: []string{"quick"}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("client slept %v through its context", elapsed)
	}
}

// TestBackoffDelays pins the exponential schedule and the Retry-After
// override.
func TestBackoffDelays(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 6, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	for _, tc := range []struct {
		attempt    int
		retryAfter time.Duration
		want       time.Duration
	}{
		{0, 0, 100 * time.Millisecond},
		{1, 0, 200 * time.Millisecond},
		{2, 0, 400 * time.Millisecond},
		{4, 0, time.Second},                   // capped
		{0, 3 * time.Second, 3 * time.Second}, // server hint dominates
		{4, 500 * time.Millisecond, time.Second},
	} {
		if got := p.delay(tc.attempt, tc.retryAfter); got != tc.want {
			t.Errorf("delay(%d, %v) = %v, want %v", tc.attempt, tc.retryAfter, got, tc.want)
		}
	}
}

// TestClientRoundTrip is the client-side integration pass: a real manager
// behind a real handler, driven end to end through Run, with one cell's
// payload cross-checked against the engine.
func TestClientRoundTrip(t *testing.T) {
	mgr := serve.NewManager(serve.Config{Workers: 2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		mgr.Shutdown(ctx)
	}()
	srv := httptest.NewServer(serve.NewHandler(mgr))
	defer srv.Close()
	c := newTestClient(t, srv)

	spec := JobSpec{
		Benchmarks: []string{"quick"},
		Machines:   []string{serve.Machine21164},
		Configs:    []string{serve.ConfigNone, "Simple"},
	}
	cells, status, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != StateDone || len(cells) != 2 {
		t.Fatalf("status = %+v with %d cells, want done with 2", status, len(cells))
	}

	// Cross-check the baseline cell against a direct engine run.
	direct := exp.NewSuiteParallel(1, 2)
	stats, err := direct.Sim21164("quick", nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(stats)
	if string(cells[0].Result) != string(want) {
		t.Errorf("served cell 0 differs from direct engine run\n served: %s\n direct: %s", cells[0].Result, want)
	}

	// Cancel is a sensible no-op on a finished job.
	if _, err := c.Cancel(context.Background(), status.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.Ready(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestStreamNotFound pins the non-retryable stream error path.
func TestStreamNotFound(t *testing.T) {
	mgr := serve.NewManager(serve.Config{})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		mgr.Shutdown(ctx)
	}()
	srv := httptest.NewServer(serve.NewHandler(mgr))
	defer srv.Close()

	err := newTestClient(t, srv).Stream(context.Background(), "job-404", func(Event) error { return nil })
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("err = %v, want StatusError 404", err)
	}
}
