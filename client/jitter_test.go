package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"lvp/internal/serve"
)

// TestJitteredBackoffBounds pins the full-jitter distribution: every
// jittered sleep falls in [0, BaseDelay·2ⁿ] (capped), and over many draws
// both halves of that range are exercised — the whole point is that a
// recovering worker is not hit by synchronized retries.
func TestJitteredBackoffBounds(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second, Jitter: true}
	const n = 2000
	ceiling := 400 * time.Millisecond // attempt 2: 100ms·2² uncapped
	var low, high int
	for i := 0; i < n; i++ {
		d := p.sleepFor(2, 0)
		if d < 0 || d > ceiling {
			t.Fatalf("jittered delay %v outside [0, %v]", d, ceiling)
		}
		if d < ceiling/2 {
			low++
		} else {
			high++
		}
	}
	if low == 0 || high == 0 {
		t.Errorf("no spread across the jitter range: %d low, %d high of %d draws", low, high, n)
	}
}

// TestJitterRespectsRetryAfter pins the floor: the server's Retry-After
// hint is never undercut by jitter.
func TestJitterRespectsRetryAfter(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second, Jitter: true}

	// Hint above the computed ceiling: the sleep is exactly the hint.
	for i := 0; i < 100; i++ {
		if d := p.sleepFor(0, 300*time.Millisecond); d != 300*time.Millisecond {
			t.Fatalf("sleepFor(0, 300ms) = %v, want exactly 300ms", d)
		}
	}
	// Hint inside the jitter range: the sleep stays within [hint, ceiling].
	for i := 0; i < 1000; i++ {
		d := p.sleepFor(2, 150*time.Millisecond)
		if d < 150*time.Millisecond || d > 400*time.Millisecond {
			t.Fatalf("sleepFor(2, 150ms) = %v outside [150ms, 400ms]", d)
		}
	}
}

// TestJitterOffIsDeterministic pins that a policy without Jitter sleeps the
// exact capped-exponential schedule (the contract TestBackoffDelays pins
// for delay).
func TestJitterOffIsDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 6, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	for attempt := 0; attempt < 5; attempt++ {
		for _, ra := range []time.Duration{0, 250 * time.Millisecond, 3 * time.Second} {
			if got, want := p.sleepFor(attempt, ra), p.delay(attempt, ra); got != want {
				t.Errorf("sleepFor(%d, %v) = %v, want %v", attempt, ra, got, want)
			}
		}
	}
}

// TestExecCellPreservesBytes pins the RPC the coordinator's byte-identity
// rests on: the result bytes come back verbatim, whitespace and all.
func TestExecCellPreservesBytes(t *testing.T) {
	const raw = `{"b":2,"a":1}` // key order a server-side re-encode would destroy
	var gotReq serve.CellRequest
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/cells" {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		if err := json.NewDecoder(r.Body).Decode(&gotReq); err != nil {
			t.Errorf("bad cell request: %v", err)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(raw))
	}))
	defer srv.Close()

	cell := Cell{Kind: "sim", Bench: "quick", Machine: serve.Machine21164, Config: serve.ConfigNone}
	res, err := newTestClient(t, srv).ExecCell(context.Background(), cell, 2)
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != raw {
		t.Errorf("ExecCell returned %q, want verbatim %q", res, raw)
	}
	if gotReq.Cell.String() != cell.String() || gotReq.Scale != 2 {
		t.Errorf("server saw request %+v, want cell %+v scale 2", gotReq, cell)
	}
}

// TestReadinessDecodesDraining pins that Readiness parses the body on both
// 200 and 503 — a draining worker still reports its state to the
// coordinator's health loop.
func TestReadinessDecodesDraining(t *testing.T) {
	for _, tc := range []struct {
		code  int
		ready bool
	}{
		{http.StatusOK, true},
		{http.StatusServiceUnavailable, false},
	} {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(tc.code)
			json.NewEncoder(w).Encode(serve.Readiness{Ready: tc.ready, Draining: !tc.ready, QueueDepth: 3, RunningJobs: 1, InFlightCells: 2})
		}))
		rd, err := newTestClient(t, srv).Readiness(context.Background())
		srv.Close()
		if err != nil {
			t.Fatalf("Readiness on %d: %v", tc.code, err)
		}
		if rd.Ready != tc.ready || rd.Load() != 6 {
			t.Errorf("Readiness on %d = %+v, want ready=%v load=6", tc.code, rd, tc.ready)
		}
	}
}

// TestTenantHeaderSent pins WithTenant: the X-Tenant header rides on every
// request.
func TestTenantHeaderSent(t *testing.T) {
	var got string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get("X-Tenant")
		json.NewEncoder(w).Encode([]JobStatus{})
	}))
	defer srv.Close()

	if _, err := newTestClient(t, srv).WithTenant("acme").List(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got != "acme" {
		t.Errorf("server saw X-Tenant %q, want acme", got)
	}
}
