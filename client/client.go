// Package client is the Go client for lvpd, the LVP experiment daemon
// (cmd/lvpd, SERVING.md). It submits experiment jobs, follows their NDJSON
// result streams, and retries transient failures — connection errors,
// 429 queue-full rejections (honouring Retry-After), and 502/503/504 —
// with capped exponential backoff.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"lvp/internal/obs"
	"lvp/internal/serve"
)

// Wire types, shared with the server so the schema lives in one place.
type (
	// JobSpec describes one experiment job (see serve.JobSpec).
	JobSpec = serve.JobSpec
	// JobStatus is a job lifecycle snapshot.
	JobStatus = serve.JobStatus
	// Cell is one unit of work inside a job.
	Cell = serve.Cell
	// Event is one line of a job's NDJSON result stream.
	Event = serve.Event
	// Timeline is a job's span timeline (serve.Timeline): the spans the
	// server's per-job flight recorder still holds, ordered by start time.
	Timeline = serve.Timeline
	// TimelineSpan is one completed span in a Timeline.
	TimelineSpan = serve.TimelineSpan
	// Readiness is the parsed /readyz body: up/down plus the queue-depth
	// and in-flight load signals behind least-loaded placement.
	Readiness = serve.Readiness
	// CellRequest is the wire form of the internal cell-execution endpoint.
	CellRequest = serve.CellRequest
)

// Job states, re-exported for switch statements on JobStatus.State.
const (
	StateQueued    = serve.StateQueued
	StateRunning   = serve.StateRunning
	StateDone      = serve.StateDone
	StateFailed    = serve.StateFailed
	StateCancelled = serve.StateCancelled
)

// RetryPolicy caps and paces a client's retries. The delay before retry n
// (0-based) is BaseDelay·2ⁿ, capped at MaxDelay; a server Retry-After hint
// overrides the computed delay when larger. With Jitter set, the computed
// delay is full-jittered — drawn uniformly from [0, BaseDelay·2ⁿ] — so a
// fleet of clients (or a coordinator's worker RPCs) recovering from the
// same rejection never retries in lockstep; the Retry-After hint stays a
// hard floor under the jittered value.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt included).
	// Values below 1 mean 1 (no retries).
	MaxAttempts int
	BaseDelay   time.Duration
	MaxDelay    time.Duration
	// Jitter enables full-jitter on the capped-exponential delay.
	Jitter bool
}

// DefaultRetry is the policy New installs: 5 attempts, 100ms–2s backoff,
// full-jitter.
var DefaultRetry = RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second, Jitter: true}

func (p RetryPolicy) attempts() int { return max(1, p.MaxAttempts) }

// delay computes the deterministic pause before retry attempt (0-based),
// with the server's Retry-After hint (0 if absent) taking precedence when
// larger. Jitter is applied on top by sleepFor.
func (p RetryPolicy) delay(attempt int, retryAfter time.Duration) time.Duration {
	d := p.BaseDelay << attempt
	if p.BaseDelay > 0 && d < p.BaseDelay { // shift overflow
		d = p.MaxDelay
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	return max(d, retryAfter)
}

// sleepFor is the pause actually slept before retry attempt (0-based):
// the capped-exponential delay, full-jittered when the policy asks for it,
// never below the server's Retry-After hint.
func (p RetryPolicy) sleepFor(attempt int, retryAfter time.Duration) time.Duration {
	d := p.delay(attempt, retryAfter)
	if !p.Jitter || d <= 0 {
		return d
	}
	jittered := time.Duration(rand.Int64N(int64(p.delay(attempt, 0)) + 1))
	return max(jittered, retryAfter)
}

// Client talks to one lvpd instance. The zero value is not usable; call
// New.
type Client struct {
	base   *url.URL
	http   *http.Client
	retry  RetryPolicy
	tenant string
}

// New returns a client for the daemon at baseURL (e.g.
// "http://localhost:8347") with DefaultRetry and the default HTTP client.
func New(baseURL string) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: bad base URL %q: %w", baseURL, err)
	}
	return &Client{base: u, http: http.DefaultClient, retry: DefaultRetry}, nil
}

// WithRetry replaces the retry policy and returns the client.
func (c *Client) WithRetry(p RetryPolicy) *Client { c.retry = p; return c }

// WithHTTPClient replaces the underlying *http.Client and returns the
// client.
func (c *Client) WithHTTPClient(h *http.Client) *Client { c.http = h; return c }

// WithTenant sets the X-Tenant header sent on every request, identifying
// the caller to the server's per-tenant admission quotas.
func (c *Client) WithTenant(tenant string) *Client { c.tenant = tenant; return c }

// StatusError is a non-2xx API response.
type StatusError struct {
	Code    int
	Message string

	// retryAfter carries the server's Retry-After hint to the backoff
	// computation.
	retryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Code, e.Message)
}

// retryable reports whether an attempt may be retried: transport errors
// (the request never completed) and explicit backpressure / transient
// server codes.
func retryable(err error, code int) bool {
	if err != nil {
		return true
	}
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// do runs one request with retries and decodes a 2xx JSON body into out.
// body is re-sent on every attempt.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var lastErr error
	for attempt := 0; attempt < c.retry.attempts(); attempt++ {
		if attempt > 0 {
			if err := sleep(ctx, c.retry.sleepFor(attempt-1, retryAfterHint(lastErr))); err != nil {
				return err
			}
		}
		resp, err := c.send(ctx, method, path, body)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return err
			}
			continue
		}
		data, code, err := readAll(resp)
		if err != nil {
			lastErr = err
			continue
		}
		if code >= 200 && code < 300 {
			if out == nil {
				return nil
			}
			return json.Unmarshal(data, out)
		}
		lastErr = &StatusError{Code: code, Message: apiError(data), retryAfter: parseRetryAfter(resp)}
		if !retryable(nil, code) {
			return lastErr
		}
	}
	return fmt.Errorf("client: giving up after %d attempts: %w", c.retry.attempts(), lastErr)
}

func (c *Client) send(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	u := c.base.JoinPath(path)
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u.String(), rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate the caller's trace identity (a coordinator dispatching a
	// cell passes the job's span context) so worker-side spans parent under
	// the same trace ID, and the tenant identity for quota accounting.
	if id := obs.TraceID(ctx); id != "" {
		req.Header.Set("X-Request-Id", id)
	}
	if c.tenant != "" {
		req.Header.Set("X-Tenant", c.tenant)
	}
	return c.http.Do(req)
}

func readAll(resp *http.Response) (data []byte, code int, err error) {
	defer resp.Body.Close()
	data, err = io.ReadAll(resp.Body)
	return data, resp.StatusCode, err
}

// apiError extracts the {"error": ...} message from an error body.
func apiError(data []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(data))
}

func parseRetryAfter(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

// retryAfterHint pulls the Retry-After duration out of a StatusError.
func retryAfterHint(err error) time.Duration {
	var se *StatusError
	if errors.As(err, &se) {
		return se.retryAfter
	}
	return 0
}

func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Submit submits a job and returns its accepted status (State "queued").
// Queue-full rejections are retried under the client's policy, honouring
// the server's Retry-After hint.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return JobStatus{}, fmt.Errorf("client: encoding spec: %w", err)
	}
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", body, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Status fetches one job's status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// List fetches every job's status in submission order.
func (c *Client) List(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Timeline fetches a job's span timeline — the per-job flight record behind
// GET /v1/jobs/{id}/timeline. It works for running and finished jobs alike
// and does not require tracing to be enabled on the server.
func (c *Client) Timeline(ctx context.Context, id string) (Timeline, error) {
	var tl Timeline
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/timeline", nil, &tl); err != nil {
		return Timeline{}, err
	}
	return tl, nil
}

// Ready reports whether the server is accepting jobs (readyz).
func (c *Client) Ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil)
}

// Readiness fetches the /readyz body in a single non-retried probe — the
// health-check primitive behind a coordinator's least-loaded placement. The
// body decodes on 200 and 503 alike (a draining server still reports its
// state); only transport or decode failures error.
func (c *Client) Readiness(ctx context.Context) (Readiness, error) {
	resp, err := c.send(ctx, http.MethodGet, "/readyz", nil)
	if err != nil {
		return Readiness{}, err
	}
	data, code, err := readAll(resp)
	if err != nil {
		return Readiness{}, err
	}
	if code != http.StatusOK && code != http.StatusServiceUnavailable {
		return Readiness{}, &StatusError{Code: code, Message: apiError(data)}
	}
	var rd Readiness
	if err := json.Unmarshal(data, &rd); err != nil {
		return Readiness{}, fmt.Errorf("client: bad readiness body: %w", err)
	}
	return rd, nil
}

// ExecCell executes one cell synchronously on the server (the internal
// coordinator→worker RPC behind POST /v1/cells) and returns the raw result
// JSON verbatim — the bytes a coordinator merges must be exactly the bytes
// the worker produced. Transient failures retry under the client's policy.
func (c *Client) ExecCell(ctx context.Context, cell Cell, scale int) (json.RawMessage, error) {
	body, err := json.Marshal(CellRequest{Cell: cell, Scale: scale})
	if err != nil {
		return nil, fmt.Errorf("client: encoding cell: %w", err)
	}
	var raw json.RawMessage
	if err := c.do(ctx, http.MethodPost, "/v1/cells", body, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// Stream follows a job's NDJSON result stream, calling fn for every event
// (cells in index order, then the terminal "done" event). fn returning an
// error stops the stream and returns that error. Connecting is retried
// under the client's policy; a stream broken mid-flight is not resumed.
func (c *Client) Stream(ctx context.Context, id string, fn func(Event) error) error {
	var resp *http.Response
	var lastErr error
	for attempt := 0; attempt < c.retry.attempts(); attempt++ {
		if attempt > 0 {
			if err := sleep(ctx, c.retry.sleepFor(attempt-1, retryAfterHint(lastErr))); err != nil {
				return err
			}
		}
		r, err := c.send(ctx, http.MethodGet, "/v1/jobs/"+id+"/results", nil)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return err
			}
			continue
		}
		if r.StatusCode != http.StatusOK {
			data, code, _ := readAll(r)
			lastErr = &StatusError{Code: code, Message: apiError(data), retryAfter: parseRetryAfter(r)}
			if !retryable(nil, code) {
				return lastErr
			}
			continue
		}
		resp = r
		break
	}
	if resp == nil {
		return fmt.Errorf("client: giving up after %d attempts: %w", c.retry.attempts(), lastErr)
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("client: bad stream line: %w", err)
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("client: stream interrupted: %w", err)
	}
	return nil
}

// Run is the convenience round trip: submit, stream, collect. It returns
// the per-cell events (in cell-index order) and the job's terminal status.
// A job that ends failed or cancelled is reported as an error alongside
// whatever cells completed.
func (c *Client) Run(ctx context.Context, spec JobSpec) ([]Event, JobStatus, error) {
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, JobStatus{}, err
	}
	var cells []Event
	var final string
	var finalErr string
	err = c.Stream(ctx, st.ID, func(ev Event) error {
		switch ev.Type {
		case "cell":
			cells = append(cells, ev)
		case "done":
			final, finalErr = ev.State, ev.Error
		}
		return nil
	})
	if err != nil {
		return cells, JobStatus{}, err
	}
	status, err := c.Status(ctx, st.ID)
	if err != nil {
		return cells, JobStatus{}, err
	}
	if final != StateDone {
		return cells, status, fmt.Errorf("client: job %s ended %s: %s", st.ID, final, finalErr)
	}
	return cells, status, nil
}
